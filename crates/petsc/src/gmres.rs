//! Restarted GMRES — the default Krylov method of PETSc's `KSP`, here for
//! general nonsymmetric systems. Left-preconditioned GMRES(m) with Arnoldi
//! via modified Gram–Schmidt and Givens-rotation least squares (Saad,
//! *Iterative Methods for Sparse Linear Systems*, alg. 6.9).

use crate::ksp::{KspResult, KspSettings, LinearOp, Preconditioner};
use crate::vec::PVec;
use ncd_core::Comm;

/// Restart length for [`gmres`].
pub const DEFAULT_RESTART: usize = 30;

/// Solve `A x = b` with restarted, left-preconditioned GMRES(m).
///
/// Convergence is tested on the preconditioned residual norm (as PETSc
/// does by default); `settings.max_it` counts total inner iterations.
pub fn gmres(
    comm: &mut Comm,
    op: &dyn LinearOp,
    pc: &dyn Preconditioner,
    restart: usize,
    b: &PVec,
    x: &mut PVec,
    settings: &KspSettings,
) -> KspResult {
    assert!(restart >= 1, "restart length must be at least 1");
    let backend = settings.backend;
    let layout = op.layout().clone();
    let rank = comm.rank();
    let zeros = || PVec::zeros(layout.clone(), rank);

    let mut work = zeros();
    let mut z = zeros();

    // Preconditioned rhs norm for the relative test.
    pc.apply(comm, b, &mut z, backend);
    let bnorm = z.norm2(comm).max(f64::MIN_POSITIVE);

    let mut total_it = 0usize;
    loop {
        // r = M^{-1}(b - A x)
        op.apply(comm, x, &mut work, backend);
        work.scale(comm, -1.0);
        work.axpy(comm, 1.0, b);
        pc.apply(comm, &work, &mut z, backend);
        let beta = z.norm2(comm);
        if beta <= settings.rtol * bnorm || beta <= settings.atol {
            return KspResult {
                converged: true,
                iterations: total_it,
                residual_norm: beta,
            };
        }
        if total_it >= settings.max_it {
            return KspResult {
                converged: false,
                iterations: total_it,
                residual_norm: beta,
            };
        }

        // Arnoldi basis and Hessenberg factors for this cycle.
        let mut basis: Vec<PVec> = Vec::with_capacity(restart + 1);
        let mut v0 = z.clone();
        v0.scale(comm, 1.0 / beta);
        basis.push(v0);
        // h[j] holds column j (length j + 2).
        let mut h: Vec<Vec<f64>> = Vec::with_capacity(restart);
        let mut cs: Vec<f64> = Vec::with_capacity(restart);
        let mut sn: Vec<f64> = Vec::with_capacity(restart);
        let mut g = vec![beta]; // rhs of the least-squares problem
        let mut cycle_res = beta;
        let mut inner = 0usize;

        for j in 0..restart {
            if total_it + inner >= settings.max_it {
                break;
            }
            // w = M^{-1} A v_j
            op.apply(comm, &basis[j], &mut work, backend);
            pc.apply(comm, &work, &mut z, backend);
            // Modified Gram–Schmidt.
            let mut col = Vec::with_capacity(j + 2);
            for vi in basis.iter().take(j + 1) {
                let hij = z.dot(comm, vi);
                z.axpy(comm, -hij, vi);
                col.push(hij);
            }
            let hlast = z.norm2(comm);
            col.push(hlast);
            // Apply accumulated Givens rotations to the new column.
            for i in 0..j {
                let t = cs[i] * col[i] + sn[i] * col[i + 1];
                col[i + 1] = -sn[i] * col[i] + cs[i] * col[i + 1];
                col[i] = t;
            }
            // New rotation to annihilate col[j+1].
            let (c, s) = givens(col[j], col[j + 1]);
            cs.push(c);
            sn.push(s);
            col[j] = c * col[j] + s * col[j + 1];
            col[j + 1] = 0.0;
            g.push(-s * g[j]);
            g[j] *= c;
            cycle_res = g[j + 1].abs();
            h.push(col);
            inner = j + 1;

            if hlast <= 1e-14 {
                break; // happy breakdown: exact solution in the subspace
            }
            let mut vnext = z.clone();
            vnext.scale(comm, 1.0 / hlast);
            basis.push(vnext);
            if cycle_res <= settings.rtol * bnorm || cycle_res <= settings.atol {
                break;
            }
        }

        // Solve the triangular system and update x.
        let k = inner;
        let mut y = vec![0.0; k];
        for i in (0..k).rev() {
            let mut acc = g[i];
            for (jj, yj) in y.iter().enumerate().take(k).skip(i + 1) {
                acc -= h[jj][i] * yj;
            }
            y[i] = acc / h[i][i];
        }
        for (i, yi) in y.iter().enumerate() {
            x.axpy(comm, *yi, &basis[i]);
        }
        total_it += k;

        if cycle_res <= settings.rtol * bnorm || cycle_res <= settings.atol {
            return KspResult {
                converged: true,
                iterations: total_it,
                residual_norm: cycle_res,
            };
        }
        if k == 0 {
            // max_it hit before any progress this cycle.
            return KspResult {
                converged: false,
                iterations: total_it,
                residual_norm: cycle_res,
            };
        }
    }
}

/// A numerically robust Givens rotation zeroing `b` against `a`.
fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a.abs() < b.abs() {
        let t = a / b;
        let s = 1.0 / (1.0 + t * t).sqrt();
        (s * t, s)
    } else {
        let t = b / a;
        let c = 1.0 / (1.0 + t * t).sqrt();
        (c, c * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ksp::{IdentityPc, JacobiPc};
    use crate::layout::Layout;
    use crate::mat::AijMat;
    use crate::scatter::ScatterBackend;
    use ncd_core::MpiConfig;
    use ncd_simnet::{Cluster, ClusterConfig};

    fn with_n<R: Send>(n: usize, f: impl Fn(&mut Comm) -> R + Send + Sync) -> Vec<R> {
        Cluster::new(ClusterConfig::uniform(n)).run(move |rank| {
            let mut comm = Comm::new(rank, MpiConfig::optimized());
            f(&mut comm)
        })
    }

    fn nonsymmetric(comm: &mut Comm, n: usize) -> AijMat {
        let layout = Layout::balanced(n, comm.size());
        let mut a = AijMat::new(layout.clone(), layout, comm.rank());
        let (s, e) = a.row_layout().range(comm.rank());
        for r in s..e {
            a.add_value(r, r, 3.0);
            if r > 0 {
                a.add_value(r, r - 1, -2.0);
            }
            if r + 1 < n {
                a.add_value(r, r + 1, -0.5);
            }
        }
        a.assemble(comm);
        a
    }

    fn check(comm: &mut Comm, a: &AijMat, x: &PVec, b: &PVec, tol: f64) {
        let mut ax = PVec::zeros(a.row_layout().clone(), comm.rank());
        a.mat_mult(comm, x, &mut ax, ScatterBackend::HandTuned);
        ax.axpy(comm, -1.0, b);
        let err = ax.norm2(comm);
        assert!(err < tol, "true residual {err}");
    }

    #[test]
    fn gmres_solves_nonsymmetric_system() {
        for nranks in [1usize, 3, 4] {
            let out = with_n(nranks, |comm| {
                let n = 24;
                let a = nonsymmetric(comm, n);
                let layout = a.row_layout().clone();
                let mut b = PVec::zeros(layout.clone(), comm.rank());
                b.set_all(1.0);
                let mut x = PVec::zeros(layout, comm.rank());
                let res = gmres(
                    comm,
                    &a,
                    &IdentityPc,
                    30,
                    &b,
                    &mut x,
                    &KspSettings::default(),
                );
                check(comm, &a, &x, &b, 1e-6);
                res
            });
            assert!(out[0].converged, "nranks={nranks}: {:?}", out[0]);
            // Without restarts, GMRES converges in at most n steps.
            assert!(out[0].iterations <= 24);
        }
    }

    #[test]
    fn gmres_with_small_restart_still_converges() {
        let out = with_n(2, |comm| {
            let n = 24;
            let a = nonsymmetric(comm, n);
            let layout = a.row_layout().clone();
            let mut b = PVec::zeros(layout.clone(), comm.rank());
            b.set_all(1.0);
            let mut x = PVec::zeros(layout, comm.rank());
            let settings = KspSettings {
                max_it: 500,
                ..Default::default()
            };
            let res = gmres(comm, &a, &IdentityPc, 5, &b, &mut x, &settings);
            check(comm, &a, &x, &b, 1e-6);
            res
        });
        assert!(out[0].converged);
        assert!(out[0].iterations > 5, "must have restarted at least once");
    }

    #[test]
    fn gmres_with_jacobi_converges_faster() {
        let out = with_n(2, |comm| {
            // Badly scaled system where Jacobi helps decisively.
            let n = 20;
            let layout = Layout::balanced(n, comm.size());
            let mut a = AijMat::new(layout.clone(), layout.clone(), comm.rank());
            let (s, e) = layout.range(comm.rank());
            for r in s..e {
                a.add_value(r, r, (r + 1) as f64 * 10.0);
                if r + 1 < n {
                    a.add_value(r, r + 1, -1.0);
                }
            }
            a.assemble(comm);
            let pc = JacobiPc::from_mat(&a);
            let mut b = PVec::zeros(layout.clone(), comm.rank());
            b.set_all(1.0);
            let mut x1 = PVec::zeros(layout.clone(), comm.rank());
            let plain = gmres(
                comm,
                &a,
                &IdentityPc,
                30,
                &b,
                &mut x1,
                &KspSettings::default(),
            );
            let mut x2 = PVec::zeros(layout, comm.rank());
            let jac = gmres(comm, &a, &pc, 30, &b, &mut x2, &KspSettings::default());
            check(comm, &a, &x2, &b, 1e-5);
            (plain.iterations, jac.iterations)
        });
        let (plain, jac) = out[0];
        assert!(
            jac <= plain,
            "Jacobi ({jac}) should not be slower ({plain})"
        );
    }

    #[test]
    fn gmres_zero_rhs_immediate() {
        let out = with_n(2, |comm| {
            let a = nonsymmetric(comm, 8);
            let layout = a.row_layout().clone();
            let b = PVec::zeros(layout.clone(), comm.rank());
            let mut x = PVec::zeros(layout, comm.rank());
            gmres(
                comm,
                &a,
                &IdentityPc,
                10,
                &b,
                &mut x,
                &KspSettings::default(),
            )
        });
        assert!(out[0].converged);
        assert_eq!(out[0].iterations, 0);
    }

    #[test]
    fn gmres_respects_max_it() {
        let out = with_n(1, |comm| {
            let a = nonsymmetric(comm, 64);
            let layout = a.row_layout().clone();
            let mut b = PVec::zeros(layout.clone(), comm.rank());
            b.set_all(1.0);
            let mut x = PVec::zeros(layout, comm.rank());
            let settings = KspSettings {
                rtol: 1e-14,
                max_it: 4,
                ..Default::default()
            };
            gmres(comm, &a, &IdentityPc, 30, &b, &mut x, &settings)
        });
        assert!(!out[0].converged);
        assert!(out[0].iterations <= 4);
    }
}
