//! General matrix-free stencil operators on distributed arrays.
//!
//! [`StencilOp`] applies an arbitrary constant-coefficient stencil
//! `y_p = scale · Σ_k c_k · x_{p + off_k}` through a DA's ghost exchange,
//! with homogeneous Dirichlet boundaries (neighbours outside the grid
//! contribute zero). Unlike the star-shaped [`crate::mg::LaplacianOp`],
//! this supports diagonal offsets and therefore *box* stencils — the
//! discretizations whose ghost exchange moves wildly nonuniform volumes
//! per neighbour (faces ≫ edges ≫ corners, paper Figure 3).

use std::sync::Arc;

use ncd_core::Comm;

use crate::da::{DistributedArray, StencilKind};
use crate::ksp::LinearOp;
use crate::layout::Layout;
use crate::scatter::ScatterBackend;
use crate::vec::PVec;

/// One stencil entry: a neighbour offset and its coefficient.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StencilEntry {
    pub offset: [i64; 3],
    pub coeff: f64,
}

impl StencilEntry {
    pub fn new(offset: [i64; 3], coeff: f64) -> Self {
        StencilEntry { offset, coeff }
    }
}

/// A constant-coefficient stencil operator over a DA.
pub struct StencilOp<'a> {
    da: &'a DistributedArray,
    entries: Vec<StencilEntry>,
    scale: f64,
}

impl<'a> StencilOp<'a> {
    /// Build the operator, validating that every offset is reachable
    /// within the DA's stencil kind and width.
    pub fn new(da: &'a DistributedArray, entries: Vec<StencilEntry>, scale: f64) -> Self {
        assert_eq!(da.dof(), 1, "StencilOp expects one degree of freedom");
        let w = da.stencil_width() as i64;
        for e in &entries {
            let nonzero_dims = (0..3).filter(|&d| e.offset[d] != 0).count();
            for d in 0..3 {
                assert!(
                    e.offset[d].abs() <= w,
                    "offset {:?} exceeds stencil width {w}",
                    e.offset
                );
                if d >= da.ndim() {
                    assert_eq!(
                        e.offset[d], 0,
                        "offset {:?} uses unused dimension {d}",
                        e.offset
                    );
                }
            }
            if nonzero_dims > 1 {
                assert_eq!(
                    da.stencil(),
                    StencilKind::Box,
                    "diagonal offset {:?} requires a box stencil",
                    e.offset
                );
            }
        }
        StencilOp { da, entries, scale }
    }

    /// The classic 9-point 2-D Laplacian (box stencil): 8·u_p minus all
    /// eight neighbours, scaled by `1/(3h²)`.
    pub fn nine_point_laplacian(da: &'a DistributedArray, h: f64) -> Self {
        assert_eq!(da.ndim(), 2, "nine-point stencil is 2-D");
        let mut entries = vec![StencilEntry::new([0, 0, 0], 8.0)];
        for dj in -1i64..=1 {
            for di in -1i64..=1 {
                if di != 0 || dj != 0 {
                    entries.push(StencilEntry::new([di, dj, 0], -1.0));
                }
            }
        }
        StencilOp::new(da, entries, 1.0 / (3.0 * h * h))
    }

    /// The 27-point 3-D box smoothing kernel with the given centre weight
    /// (all neighbours weighted 1, then normalized).
    pub fn box_average_27(da: &'a DistributedArray, centre: f64) -> Self {
        assert_eq!(da.ndim(), 3, "27-point stencil is 3-D");
        let mut entries = Vec::with_capacity(27);
        let mut total = 0.0;
        for dk in -1i64..=1 {
            for dj in -1i64..=1 {
                for di in -1i64..=1 {
                    let w = if di == 0 && dj == 0 && dk == 0 {
                        centre
                    } else {
                        1.0
                    };
                    entries.push(StencilEntry::new([di, dj, dk], w));
                    total += w;
                }
            }
        }
        StencilOp::new(da, entries, 1.0 / total)
    }

    pub fn entries(&self) -> &[StencilEntry] {
        &self.entries
    }

    /// Assemble this operator into an explicit [`crate::mat::AijMat`] over the DA's
    /// global layout (PETSc's `DMCreateMatrix` + `MatSetValuesStencil`),
    /// clipping entries at the grid boundary exactly as the matrix-free
    /// apply does.
    pub fn assemble(&self, comm: &mut Comm) -> crate::mat::AijMat {
        let da = self.da;
        let layout = da.global_layout().clone();
        let mut a = crate::mat::AijMat::new(layout.clone(), layout, comm.rank());
        let dims = da.dims();
        for p in da.owned_points().collect::<Vec<_>>() {
            let row = da.global_vec_index(p, 0);
            for e in &self.entries {
                let mut q = [0usize; 3];
                let mut inside = true;
                for d in 0..3 {
                    let c = p[d] as i64 + e.offset[d];
                    if c < 0 || c >= dims[d] as i64 {
                        inside = false;
                        break;
                    }
                    q[d] = c as usize;
                }
                if inside {
                    a.add_value(row, da.global_vec_index(q, 0), e.coeff * self.scale);
                }
            }
        }
        a.assemble(comm);
        a
    }
}

impl LinearOp for StencilOp<'_> {
    fn layout(&self) -> &Arc<Layout> {
        self.da.global_layout()
    }

    fn apply(&self, comm: &mut Comm, x: &PVec, y: &mut PVec, backend: ScatterBackend) {
        let da = self.da;
        let mut local = da.create_local_vec();
        // Split ghost update: owned values land in `local` immediately,
        // ghost traffic proceeds while the interior is computed.
        let handle = da.global_to_local_begin(comm, x, &mut local, backend);
        let dims = da.dims();
        let (os, ol) = da.owned();
        let row = |l: &[f64], p: [usize; 3]| {
            let mut acc = 0.0;
            for e in &self.entries {
                let mut q = [0usize; 3];
                let mut inside = true;
                for d in 0..3 {
                    let c = p[d] as i64 + e.offset[d];
                    if c < 0 || c >= dims[d] as i64 {
                        inside = false;
                        break;
                    }
                    q[d] = c as usize;
                }
                if inside {
                    acc += e.coeff * l[da.local_vec_offset(q, 0)];
                }
            }
            acc * self.scale
        };
        // A point is interior when its whole in-grid footprint is owned:
        // those rows read no ghost values and run before `end`.
        let interior = |p: [usize; 3]| {
            self.entries.iter().all(|e| {
                (0..3).all(|d| {
                    let c = p[d] as i64 + e.offset[d];
                    c < 0
                        || c >= dims[d] as i64
                        || (c >= os[d] as i64 && c < (os[d] + ol[d]) as i64)
                })
            })
        };
        let mut boundary = Vec::new();
        let mut interior_rows = 0u64;
        for (off, p) in da.owned_points().enumerate() {
            if interior(p) {
                y.local_mut()[off] = row(local.local(), p);
                interior_rows += 1;
            } else {
                boundary.push((off, p));
            }
        }
        comm.rank_mut()
            .compute_flops(2 * self.entries.len() as u64 * interior_rows);
        da.global_to_local_end(comm, handle, &mut local);
        for &(off, p) in &boundary {
            y.local_mut()[off] = row(local.local(), p);
        }
        comm.rank_mut()
            .compute_flops(2 * self.entries.len() as u64 * boundary.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncd_core::MpiConfig;
    use ncd_simnet::{Cluster, ClusterConfig};

    fn with_n<R: Send>(n: usize, f: impl Fn(&mut Comm) -> R + Send + Sync) -> Vec<R> {
        Cluster::new(ClusterConfig::uniform(n)).run(move |rank| {
            let mut comm = Comm::new(rank, MpiConfig::optimized());
            f(&mut comm)
        })
    }

    #[test]
    fn constant_field_under_nine_point_is_boundary_only() {
        with_n(4, |comm| {
            let da = DistributedArray::new(comm, &[8, 8], 1, StencilKind::Box, 1);
            let op = StencilOp::nine_point_laplacian(&da, 1.0);
            let mut x = da.create_global_vec();
            x.set_all(1.0);
            let mut y = da.create_global_vec();
            op.apply(comm, &x, &mut y, ScatterBackend::Datatype);
            for (off, p) in da.owned_points().enumerate() {
                let interior = p[0] > 0 && p[0] < 7 && p[1] > 0 && p[1] < 7;
                if interior {
                    assert!(
                        y.local()[off].abs() < 1e-12,
                        "interior {p:?} -> {}",
                        y.local()[off]
                    );
                } else {
                    // Boundary rows lose neighbour contributions.
                    assert!(y.local()[off] > 0.0, "boundary {p:?}");
                }
            }
        });
    }

    #[test]
    fn stencil_matches_assembled_matrix() {
        // Apply the 9-point stencil matrix-free and via an assembled AIJ;
        // results must agree to machine precision.
        with_n(4, |comm| {
            let n = 6usize;
            let da = DistributedArray::new(comm, &[n, n], 1, StencilKind::Box, 1);
            let op = StencilOp::nine_point_laplacian(&da, 0.5);
            let layout = da.global_layout().clone();
            let a = op.assemble(comm);

            let (s, e) = layout.range(comm.rank());
            let x = PVec::from_local(
                layout.clone(),
                comm.rank(),
                (s..e).map(|g| ((g * 17 + 3) % 23) as f64).collect(),
            );
            let mut y1 = da.create_global_vec();
            let mut y2 = da.create_global_vec();
            op.apply(comm, &x, &mut y1, ScatterBackend::HandTuned);
            a.mat_mult(comm, &x, &mut y2, ScatterBackend::HandTuned);
            for (v1, v2) in y1.local().iter().zip(y2.local()) {
                assert!((v1 - v2).abs() < 1e-12, "{v1} vs {v2}");
            }
        });
    }

    #[test]
    fn box_average_preserves_constants_in_interior() {
        with_n(8, |comm| {
            let da = DistributedArray::new(comm, &[6, 6, 6], 1, StencilKind::Box, 1);
            let op = StencilOp::box_average_27(&da, 5.0);
            let mut x = da.create_global_vec();
            x.set_all(2.0);
            let mut y = da.create_global_vec();
            op.apply(comm, &x, &mut y, ScatterBackend::Datatype);
            for (off, p) in da.owned_points().enumerate() {
                let interior = (0..3).all(|d| p[d] > 0 && p[d] < 5);
                if interior {
                    assert!((y.local()[off] - 2.0).abs() < 1e-12);
                } else {
                    assert!(y.local()[off] < 2.0, "boundary averages shrink");
                }
            }
        });
    }

    #[test]
    #[should_panic(expected = "requires a box stencil")]
    fn diagonal_offset_on_star_da_panics() {
        with_n(1, |comm| {
            let da = DistributedArray::new(comm, &[4, 4], 1, StencilKind::Star, 1);
            StencilOp::new(&da, vec![StencilEntry::new([1, 1, 0], 1.0)], 1.0);
        });
    }

    #[test]
    #[should_panic(expected = "exceeds stencil width")]
    fn wide_offset_panics() {
        with_n(1, |comm| {
            let da = DistributedArray::new(comm, &[4, 4], 1, StencilKind::Box, 1);
            StencilOp::new(&da, vec![StencilEntry::new([2, 0, 0], 1.0)], 1.0);
        });
    }
}
