//! Property-based tests of the PETSc layer: arbitrary scatters must move
//! values correctly under every backend, and the distributed vector
//! reductions must match their sequential counterparts.

use ncd_core::{Comm, MpiConfig};
use ncd_petsc::{IndexSet, Layout, PVec, ScatterBackend, VecScatter};
use ncd_simnet::{Cluster, ClusterConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random subset of source indices scattered to a random permutation
    /// of destination slots, split arbitrarily across ranks: every value
    /// must land exactly where the pair list says, under both backends and
    /// both MPI flavors.
    #[test]
    fn arbitrary_scatters_move_values_exactly(
        nranks in 1usize..6,
        n in 1usize..64,
        seed in 0u64..1000,
        baseline in any::<bool>(),
    ) {
        // Build a deterministic pseudorandom partial permutation.
        let mut src_idx: Vec<usize> = (0..n).collect();
        let mut dst_idx: Vec<usize> = (0..n).collect();
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut shuffle = |v: &mut Vec<usize>| {
            for i in (1..v.len()).rev() {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                v.swap(i, (x as usize) % (i + 1));
            }
        };
        shuffle(&mut src_idx);
        shuffle(&mut dst_idx);
        let take = n / 2 + 1;
        let src_idx = &src_idx[..take];
        let dst_idx = &dst_idx[..take];

        for backend in [ScatterBackend::HandTuned, ScatterBackend::Datatype] {
            let cfg = if baseline { MpiConfig::baseline() } else { MpiConfig::optimized() };
            let src_v = src_idx.to_vec();
            let dst_v = dst_idx.to_vec();
            let out = Cluster::new(ClusterConfig::uniform(nranks)).run(move |rank| {
                let mut comm = Comm::new(rank, cfg.clone());
                let layout = Layout::balanced(n, comm.size());
                let (s, e) = layout.range(comm.rank());
                let x = PVec::from_local(
                    layout.clone(),
                    comm.rank(),
                    (s..e).map(|g| (g + 1) as f64).collect(),
                );
                let mut y = PVec::zeros(layout.clone(), comm.rank());
                y.set_all(-1.0);
                // Each rank contributes a slice of the pair list.
                let per = src_v.len().div_ceil(comm.size());
                let lo = (comm.rank() * per).min(src_v.len());
                let hi = ((comm.rank() + 1) * per).min(src_v.len());
                let plan = VecScatter::create(
                    &mut comm,
                    layout.clone(),
                    &IndexSet::general(src_v[lo..hi].to_vec()),
                    layout,
                    &IndexSet::general(dst_v[lo..hi].to_vec()),
                );
                plan.apply(&mut comm, &x, &mut y, backend);
                y.local().to_vec()
            });
            let y_global: Vec<f64> = out.into_iter().flatten().collect();
            let mut expected = vec![-1.0f64; n];
            for (&sg, &dg) in src_idx.iter().zip(dst_idx) {
                expected[dg] = (sg + 1) as f64;
            }
            prop_assert_eq!(&y_global, &expected, "backend {:?}", backend);
        }
    }

    /// Vector reductions agree with sequential arithmetic regardless of the
    /// partition.
    #[test]
    fn reductions_match_sequential(
        nranks in 1usize..6,
        vals in proptest::collection::vec(-10.0f64..10.0, 1..50),
    ) {
        let n = vals.len();
        let vals_c = vals.clone();
        let out = Cluster::new(ClusterConfig::uniform(nranks)).run(move |rank| {
            let mut comm = Comm::new(rank, MpiConfig::optimized());
            let layout = Layout::balanced(n, comm.size());
            let (s, e) = layout.range(comm.rank());
            let v = PVec::from_local(layout, comm.rank(), vals_c[s..e].to_vec());
            (v.sum(&mut comm), v.norm2(&mut comm), v.norm_inf(&mut comm), v.dot(&mut comm, &v))
        });
        let sum: f64 = vals.iter().sum();
        let dot: f64 = vals.iter().map(|v| v * v).sum();
        let ninf = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (s, n2, ni, d) in out {
            prop_assert!((s - sum).abs() < 1e-9);
            prop_assert!((n2 - dot.sqrt()).abs() < 1e-9);
            prop_assert!((ni - ninf).abs() < 1e-12);
            prop_assert!((d - dot).abs() < 1e-9);
        }
    }
}
