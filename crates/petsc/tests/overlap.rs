//! Overlap guarantees of the split scatter: `begin` + compute + `end`
//! must hide communication behind computation **on the simulated clock**,
//! and the split form must deliver bit-identical data to the monolithic
//! `apply`.

use ncd_core::{Comm, MpiConfig};
use ncd_petsc::{DistributedArray, ScatterBackend, StencilKind};
use ncd_simnet::{Cluster, ClusterConfig, SimTime};

const GRID: usize = 64;
const FLOPS: u64 = 5_000_000;

/// One ghost exchange plus a fixed slab of compute, with and without
/// overlap, on a uniform (noise-free) cluster so the comparison is exact.
/// Returns the slowest rank's simulated finish time.
fn ghost_exchange_makespan(overlap: bool, reps: usize) -> SimTime {
    let out = Cluster::new(ClusterConfig::uniform(4)).run(move |rank| {
        let mut comm = Comm::new(rank, MpiConfig::optimized());
        let da = DistributedArray::new(&mut comm, &[GRID, GRID], 1, StencilKind::Star, 1);
        let mut g = da.create_global_vec();
        for (off, p) in da.owned_points().enumerate() {
            g.local_mut()[off] = (p[0] * 100 + p[1]) as f64;
        }
        let mut l = da.create_local_vec();
        comm.barrier();
        comm.rank_mut().reset_clock();
        for _ in 0..reps {
            if overlap {
                let h = da.global_to_local_begin(&mut comm, &g, &mut l, ScatterBackend::HandTuned);
                comm.rank_mut().compute_flops(FLOPS);
                da.global_to_local_end(&mut comm, h, &mut l);
            } else {
                da.global_to_local(&mut comm, &g, &mut l, ScatterBackend::HandTuned);
                comm.rank_mut().compute_flops(FLOPS);
            }
        }
        comm.rank_ref().now()
    });
    out.into_iter().max().unwrap()
}

#[test]
fn overlapped_ghost_exchange_beats_sequential_on_simulated_time() {
    let sequential = ghost_exchange_makespan(false, 10);
    let overlapped = ghost_exchange_makespan(true, 10);
    assert!(
        overlapped < sequential,
        "overlap must win: overlapped={overlapped} sequential={sequential}"
    );
}

#[test]
fn split_scatter_delivers_the_same_ghosts_as_apply() {
    let out = Cluster::new(ClusterConfig::uniform(4)).run(|rank| {
        let mut comm = Comm::new(rank, MpiConfig::baseline());
        let da = DistributedArray::new(&mut comm, &[17, 13], 1, StencilKind::Box, 2);
        let mut g = da.create_global_vec();
        for (off, p) in da.owned_points().enumerate() {
            g.local_mut()[off] = (p[0] * 31 + p[1] * 7) as f64;
        }
        let mut via_apply = da.create_local_vec();
        da.global_to_local(&mut comm, &g, &mut via_apply, ScatterBackend::HandTuned);
        let mut via_split = da.create_local_vec();
        let h = da.global_to_local_begin(&mut comm, &g, &mut via_split, ScatterBackend::HandTuned);
        comm.rank_mut().compute_flops(100_000);
        da.global_to_local_end(&mut comm, h, &mut via_split);
        assert_eq!(via_apply.local(), via_split.local());
        true
    });
    assert!(out.iter().all(|&b| b));
}

#[test]
fn datatype_backend_begin_completes_eagerly() {
    // The datatype backend has no split form: everything happens in
    // begin, end is a no-op — but the API contract still holds.
    let out = Cluster::new(ClusterConfig::uniform(4)).run(|rank| {
        let mut comm = Comm::new(rank, MpiConfig::optimized());
        let da = DistributedArray::new(&mut comm, &[12, 12], 1, StencilKind::Star, 1);
        let mut g = da.create_global_vec();
        for (off, p) in da.owned_points().enumerate() {
            g.local_mut()[off] = (p[0] + 10 * p[1]) as f64;
        }
        let mut l = da.create_local_vec();
        let h = da.global_to_local_begin(&mut comm, &g, &mut l, ScatterBackend::Datatype);
        assert_eq!(h.pending_ops(), 0, "datatype backend completes in begin");
        da.global_to_local_end(&mut comm, h, &mut l);
        let (gs, gl) = da.ghosted();
        for j in gs[1]..gs[1] + gl[1] {
            for i in gs[0]..gs[0] + gl[0] {
                let p = [i, j, 0];
                if da.point_in_local_form(p) {
                    assert_eq!(l.local()[da.local_vec_offset(p, 0)], (i + 10 * j) as f64);
                }
            }
        }
        true
    });
    assert!(out.iter().all(|&b| b));
}
