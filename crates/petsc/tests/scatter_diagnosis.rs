//! Overlap-efficiency diagnosis of the split scatter: the
//! begin/compute/end stage mirrors must let `stage_overlap` tell a run
//! that hid its ghost-exchange wire time behind compute apart from one
//! that exposed it.

use ncd_core::{Comm, MpiConfig};
use ncd_petsc::{
    DistributedArray, ScatterBackend, StencilKind, STAGE_SCATTER_BEGIN, STAGE_SCATTER_END,
};
use ncd_simnet::{
    render_stage_overlap, stage_overlap, Cluster, ClusterConfig, StageOverlap, TraceEvent,
};

const GRID: usize = 64;

/// Split ghost exchanges with `flops` of compute inside each window,
/// returning every rank's trace (profiling + tracing on, so the scatter
/// stages mirror as spans).
fn traced_ghost_exchange(flops: u64, reps: usize) -> Vec<Vec<TraceEvent>> {
    Cluster::new(ClusterConfig::uniform(4)).run(move |rank| {
        rank.enable_profiling();
        rank.enable_tracing();
        let mut comm = Comm::new(rank, MpiConfig::optimized());
        let da = DistributedArray::new(&mut comm, &[GRID, GRID], 1, StencilKind::Star, 1);
        let mut g = da.create_global_vec();
        for (off, p) in da.owned_points().enumerate() {
            g.local_mut()[off] = (p[0] * 100 + p[1]) as f64;
        }
        let mut l = da.create_local_vec();
        comm.barrier();
        for _ in 0..reps {
            let h = da.global_to_local_begin(&mut comm, &g, &mut l, ScatterBackend::HandTuned);
            if flops > 0 {
                comm.rank_mut().compute_flops(flops);
            }
            da.global_to_local_end(&mut comm, h, &mut l);
        }
        comm.rank_mut().take_trace()
    })
}

fn overall_efficiency(findings: &[StageOverlap]) -> f64 {
    let window: u64 = findings.iter().map(|f| f.window.as_ns()).sum();
    let leaked: u64 = findings.iter().map(|f| f.leaked().as_ns()).sum();
    if window + leaked == 0 {
        1.0
    } else {
        window as f64 / (window + leaked) as f64
    }
}

#[test]
fn big_compute_window_hides_the_scatter_wire() {
    let traces = traced_ghost_exchange(5_000_000, 5);
    let findings = stage_overlap(&traces, STAGE_SCATTER_BEGIN, STAGE_SCATTER_END);
    assert_eq!(findings.len(), 4, "every rank recorded stage pairs");
    for f in &findings {
        assert_eq!(f.windows, 5, "one window per repetition");
    }
    let eff = overall_efficiency(&findings);
    assert!(
        eff > 0.95,
        "5M flops must hide the ghost wire: efficiency {eff:.3}"
    );
    let report = render_stage_overlap(&findings, "scatter");
    assert!(report.contains("scatter overlap"), "{report}");
    assert!(report.contains("% hidden)"), "{report}");
}

#[test]
fn empty_compute_window_exposes_the_scatter_wire() {
    let traces = traced_ghost_exchange(0, 5);
    let findings = stage_overlap(&traces, STAGE_SCATTER_BEGIN, STAGE_SCATTER_END);
    assert_eq!(findings.len(), 4);
    let hidden = overall_efficiency(&stage_overlap(
        &traced_ghost_exchange(5_000_000, 5),
        STAGE_SCATTER_BEGIN,
        STAGE_SCATTER_END,
    ));
    let exposed = overall_efficiency(&findings);
    assert!(
        exposed < hidden,
        "no compute window must expose more wire: exposed-run eff {exposed:.3} \
         vs hidden-run eff {hidden:.3}"
    );
    // With no compute at all, the wait shows up somewhere: either as
    // send-drain residual or as blocked receives inside the end stage.
    let waited: u64 = findings.iter().map(|f| f.leaked().as_ns()).sum();
    assert!(waited > 0, "an empty window cannot hide the exchange");
}

#[test]
fn missing_stages_report_cleanly() {
    // Tracing without profiling: stages do not mirror, so the diagnosis
    // must say so instead of fabricating windows.
    let traces = Cluster::new(ClusterConfig::uniform(2)).run(|rank| {
        rank.enable_tracing();
        let mut comm = Comm::new(rank, MpiConfig::optimized());
        comm.barrier();
        comm.rank_mut().take_trace()
    });
    let findings = stage_overlap(&traces, STAGE_SCATTER_BEGIN, STAGE_SCATTER_END);
    assert!(findings.is_empty());
    let report = render_stage_overlap(&findings, "scatter");
    assert!(
        report.contains("(no scatter begin/end stage pairs traced)"),
        "{report}"
    );
}
