//! Pack-pipeline observation: a per-block callback threaded through the
//! engines so callers can watch the pipeline work *as it executes*.
//!
//! [`OpCounts`](crate::OpCounts) aggregates a whole stream; a
//! [`PackObserver`] sees every pipeline block individually — the seek the
//! single-context engine paid to recover its lost context (the quadratic
//! signal of §3.1), the look-ahead window length, the sparse/dense verdict,
//! and the bytes shipped. The communication layer feeds these into metrics
//! histograms and the trace's datatype track; `examples/pack_profile.rs`
//! prints them directly to reproduce the paper's Figure 9-style contrast.
//!
//! Observation is pull-free and allocation-free: engines invoke
//! [`PackObserver::on_block`] once per produced block with a stack
//! [`BlockObservation`]; the default [`NullObserver`] compiles to nothing.

use crate::engine::BlockMode;

/// Everything the engine knows about one pipeline block, before any cost
/// conversion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockObservation {
    /// 0-based index of the block within the message stream.
    pub index: u64,
    /// The density classifier's verdict for the look-ahead window.
    pub mode: BlockMode,
    /// Segments re-walked from the type root to recover a lost context
    /// (single-context sparse blocks only — the quadratic signal; always
    /// zero for the dual-context engine).
    pub seek_segments: u64,
    /// Packed-byte offset the re-search walked back to: the seek
    /// *distance* from the root. Zero when no seek happened.
    pub seek_target: u64,
    /// Segments visited by the look-ahead classification of this block.
    pub lookahead_segments: u64,
    /// Ordinal of the datatype segment the block's window began at
    /// (`replica * segments_per_replica + segment`).
    pub window_start_segment: u64,
    /// Bytes the block carried onto the wire.
    pub bytes: u64,
}

/// Receives one callback per pipeline block an engine produces.
pub trait PackObserver {
    fn on_block(&mut self, obs: &BlockObservation);
}

/// Ignores everything — the observer behind the plain
/// [`PackEngine::next_block`](crate::PackEngine::next_block) path.
pub struct NullObserver;

impl PackObserver for NullObserver {
    fn on_block(&mut self, _obs: &BlockObservation) {}
}

/// Collects every observation in order (tests, examples, reports).
#[derive(Clone, Debug, Default)]
pub struct BlockLog {
    pub blocks: Vec<BlockObservation>,
}

impl BlockLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total seek steps across all observed blocks.
    pub fn total_seek(&self) -> u64 {
        self.blocks.iter().map(|b| b.seek_segments).sum()
    }

    /// Total bytes across all observed blocks.
    pub fn total_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.bytes).sum()
    }

    /// Mean seek steps per block (0 on an empty log).
    pub fn seek_per_block(&self) -> f64 {
        if self.blocks.is_empty() {
            0.0
        } else {
            self.total_seek() as f64 / self.blocks.len() as f64
        }
    }

    /// Number of blocks classified sparse (packed through a buffer).
    pub fn sparse_blocks(&self) -> u64 {
        self.blocks
            .iter()
            .filter(|b| b.mode == BlockMode::Packed)
            .count() as u64
    }

    /// Number of blocks classified dense (shipped directly).
    pub fn dense_blocks(&self) -> u64 {
        self.blocks
            .iter()
            .filter(|b| b.mode == BlockMode::Direct)
            .count() as u64
    }
}

impl PackObserver for BlockLog {
    fn on_block(&mut self, obs: &BlockObservation) {
        self.blocks.push(*obs);
    }
}

/// Keeps only the most recent observation — the communication layer's
/// per-block capture buffer (one `next_block` call produces at most one).
#[derive(Clone, Copy, Debug, Default)]
pub struct LastBlock(pub Option<BlockObservation>);

impl PackObserver for LastBlock {
    fn on_block(&mut self, obs: &BlockObservation) {
        self.0 = Some(*obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(index: u64, mode: BlockMode, seek: u64, bytes: u64) -> BlockObservation {
        BlockObservation {
            index,
            mode,
            seek_segments: seek,
            seek_target: seek * 24,
            lookahead_segments: 4,
            window_start_segment: index * 2,
            bytes,
        }
    }

    #[test]
    fn block_log_aggregates() {
        let mut log = BlockLog::new();
        log.on_block(&obs(0, BlockMode::Packed, 0, 48));
        log.on_block(&obs(1, BlockMode::Packed, 2, 48));
        log.on_block(&obs(2, BlockMode::Direct, 0, 96));
        assert_eq!(log.blocks.len(), 3);
        assert_eq!(log.total_seek(), 2);
        assert_eq!(log.total_bytes(), 192);
        assert_eq!(log.sparse_blocks(), 2);
        assert_eq!(log.dense_blocks(), 1);
        assert!((log.seek_per_block() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_log_is_all_zero() {
        let log = BlockLog::new();
        assert_eq!(log.total_seek(), 0);
        assert_eq!(log.total_bytes(), 0);
        assert_eq!(log.seek_per_block(), 0.0);
    }

    #[test]
    fn last_block_keeps_latest() {
        let mut last = LastBlock::default();
        assert!(last.0.is_none());
        last.on_block(&obs(0, BlockMode::Packed, 1, 10));
        last.on_block(&obs(1, BlockMode::Direct, 0, 20));
        assert_eq!(last.0.expect("observed").index, 1);
    }
}
