//! # ncd-datatype — MPI-style derived datatypes and pack engines
//!
//! This crate implements the noncontiguous-data half of the paper
//! *"Nonuniformly Communicating Noncontiguous Data: A Case Study with PETSc
//! and MPI"* (IPPS 2007):
//!
//! * [`Datatype`] — recursive MPI-style derived datatypes (contiguous,
//!   vector, hvector, indexed, hindexed, indexed-block, struct, subarray,
//!   resized) committed into a flat, coalesced segment map;
//! * [`TypeCursor`] — a *context*: a resumable position in the packed
//!   stream, with cheap snapshots and an instrumented linear *search*;
//! * [`SingleContextEngine`] — the baseline pipelined pack engine that
//!   loses its context to look-ahead and pays a quadratically growing
//!   re-search (the behaviour of MPICH2 the paper analyses in §3.1);
//! * [`DualContextEngine`] — the paper's §4.1 dual-context look-ahead
//!   design that eliminates the search entirely;
//! * [`Unpacker`] and whole-message [`pack_all`]/[`unpack_all`] helpers.
//!
//! Engines report [`OpCounts`] — counts of operations actually executed —
//! which the `ncd-core` communication layer converts into simulated time
//! under its cost model.
//!
//! ```
//! use ncd_datatype::{matrix_column_type, pack_all, unpack_all};
//!
//! // One column of an 8x8 matrix of 3-double elements (paper Fig. 4-6).
//! let col = matrix_column_type(8, 8, 3).unwrap();
//! assert_eq!(col.num_segments(), 8);     // 8 pieces of 24 bytes
//! let matrix = vec![42u8; 8 * 8 * 24];
//! let packed = pack_all(&col, 1, &matrix).unwrap();
//! assert_eq!(packed.len(), col.size());
//! let mut out = vec![0u8; matrix.len()];
//! unpack_all(&col, 1, &mut out, &packed).unwrap();
//! ```

pub mod cursor;
pub mod desc;
pub mod engine;
pub mod error;
pub mod observe;
pub mod pack;

pub use cursor::{MemRange, TypeCursor};
pub use desc::{Datatype, Primitive, Segment, StructField, MAX_SEGMENTS};
pub use engine::{
    Block, BlockMode, DualContextEngine, EngineKind, EngineParams, OpCounts, PackEngine,
    SingleContextEngine, Unpacker,
};
pub use error::{Result, TypeError};
pub use observe::{BlockLog, BlockObservation, LastBlock, NullObserver, PackObserver};
pub use pack::{
    hindexed_from_f64_indices, matrix_column_type, pack_all, pack_all_profiled, unpack_all,
};
