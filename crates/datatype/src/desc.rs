//! MPI-style derived datatype descriptions.
//!
//! A [`Datatype`] is a recursive description of a (possibly noncontiguous)
//! memory layout, mirroring the MPI derived-datatype constructors:
//! contiguous, vector/hvector, indexed/hindexed/indexed-block, struct,
//! subarray and resized, over a handful of primitive types.
//!
//! Types are *committed at construction*: the tree is flattened into an
//! ordered list of coalesced contiguous [`Segment`]s (the *type map*), which
//! is what the pack engines and cursors consume. Flattening once and walking
//! a flat array is how production MPI implementations process datatypes
//! (MPICH's "dataloops" serve the same purpose), and it is the structure the
//! paper's context/search discussion is about: a *context* is a position in
//! this walk, and *searching* is re-walking the segment list from the start.

use std::sync::Arc;

use crate::error::{Result, TypeError};

/// Hard cap on materialized segments per type instance, to keep pathological
/// constructions from exhausting memory. Generous enough for every workload
/// in the paper (the largest, the 1024x1024 transpose column type, needs
/// 1024 segments per instance).
pub const MAX_SEGMENTS: usize = 1 << 24;

/// Primitive (leaf) datatypes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Primitive {
    Double,
    Float,
    Int32,
    Int64,
    UInt8,
    Char,
}

impl Primitive {
    /// Size in bytes.
    pub fn size(self) -> usize {
        match self {
            Primitive::Double | Primitive::Int64 => 8,
            Primitive::Float | Primitive::Int32 => 4,
            Primitive::UInt8 | Primitive::Char => 1,
        }
    }
}

/// One maximal contiguous piece of a flattened datatype, in pack order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Byte displacement from the start of the buffer (for replica 0).
    pub offset: i64,
    /// Length in bytes.
    pub len: usize,
}

impl Segment {
    pub fn end(&self) -> i64 {
        self.offset + self.len as i64
    }
}

/// A field of a struct datatype: `count` copies of `dtype` starting at byte
/// displacement `disp`.
#[derive(Clone, Debug)]
pub struct StructField {
    pub disp: i64,
    pub count: usize,
    pub dtype: Datatype,
}

#[derive(Clone, Debug)]
enum Kind {
    Primitive(Primitive),
    Contiguous {
        count: usize,
        child: Datatype,
    },
    Vector {
        count: usize,
        blocklen: usize,
        /// Stride between block starts, in units of the child extent.
        stride: i64,
        child: Datatype,
    },
    Hvector {
        count: usize,
        blocklen: usize,
        /// Stride between block starts, in bytes.
        stride_bytes: i64,
        child: Datatype,
    },
    /// Blocks of `(displacement in child extents, block length in children)`.
    Indexed {
        blocks: Vec<(i64, usize)>,
        child: Datatype,
    },
    /// Blocks of `(displacement in bytes, block length in children)`.
    Hindexed {
        blocks: Vec<(i64, usize)>,
        child: Datatype,
    },
    IndexedBlock {
        blocklen: usize,
        /// Displacements in child extents.
        disps: Vec<i64>,
        child: Datatype,
    },
    Struct {
        fields: Vec<StructField>,
    },
    Subarray {
        sizes: Vec<usize>,
        subsizes: Vec<usize>,
        starts: Vec<usize>,
        child: Datatype,
    },
    Resized {
        lb: i64,
        extent: i64,
        child: Datatype,
    },
}

#[derive(Debug)]
struct Inner {
    kind: Kind,
    /// Packed size in bytes of one instance (sum of segment lengths).
    size: usize,
    /// Lower bound of the type map, in bytes.
    lb: i64,
    /// Extent: spacing between consecutive instances in an array of this
    /// type, in bytes.
    extent: i64,
    /// Flattened, coalesced type map for one instance (replica 0).
    segments: Vec<Segment>,
}

/// A committed derived datatype. Cheap to clone (`Arc` inside).
#[derive(Clone, Debug)]
pub struct Datatype(Arc<Inner>);

impl Datatype {
    // ----- primitive constructors -------------------------------------

    pub fn double() -> Datatype {
        Self::primitive(Primitive::Double)
    }

    pub fn float() -> Datatype {
        Self::primitive(Primitive::Float)
    }

    pub fn int32() -> Datatype {
        Self::primitive(Primitive::Int32)
    }

    pub fn int64() -> Datatype {
        Self::primitive(Primitive::Int64)
    }

    pub fn byte() -> Datatype {
        Self::primitive(Primitive::UInt8)
    }

    pub fn primitive(p: Primitive) -> Datatype {
        let size = p.size();
        Datatype(Arc::new(Inner {
            kind: Kind::Primitive(p),
            size,
            lb: 0,
            extent: size as i64,
            segments: vec![Segment {
                offset: 0,
                len: size,
            }],
        }))
    }

    // ----- derived constructors ---------------------------------------

    /// `count` consecutive copies of `child` (MPI_Type_contiguous).
    pub fn contiguous(count: usize, child: &Datatype) -> Result<Datatype> {
        Self::commit(Kind::Contiguous {
            count,
            child: child.clone(),
        })
    }

    /// `count` blocks of `blocklen` children, block starts `stride` child
    /// extents apart (MPI_Type_vector).
    pub fn vector(
        count: usize,
        blocklen: usize,
        stride: i64,
        child: &Datatype,
    ) -> Result<Datatype> {
        Self::commit(Kind::Vector {
            count,
            blocklen,
            stride,
            child: child.clone(),
        })
    }

    /// Like [`Datatype::vector`] but with the stride in bytes
    /// (MPI_Type_create_hvector).
    pub fn hvector(
        count: usize,
        blocklen: usize,
        stride_bytes: i64,
        child: &Datatype,
    ) -> Result<Datatype> {
        Self::commit(Kind::Hvector {
            count,
            blocklen,
            stride_bytes,
            child: child.clone(),
        })
    }

    /// Blocks of `(displacement in child extents, blocklen)` (MPI_Type_indexed).
    pub fn indexed(blocks: &[(i64, usize)], child: &Datatype) -> Result<Datatype> {
        Self::commit(Kind::Indexed {
            blocks: blocks.to_vec(),
            child: child.clone(),
        })
    }

    /// Blocks of `(displacement in bytes, blocklen)` (MPI_Type_create_hindexed).
    pub fn hindexed(blocks: &[(i64, usize)], child: &Datatype) -> Result<Datatype> {
        Self::commit(Kind::Hindexed {
            blocks: blocks.to_vec(),
            child: child.clone(),
        })
    }

    /// Fixed-length blocks at the given displacements, in child extents
    /// (MPI_Type_create_indexed_block).
    pub fn indexed_block(blocklen: usize, disps: &[i64], child: &Datatype) -> Result<Datatype> {
        Self::commit(Kind::IndexedBlock {
            blocklen,
            disps: disps.to_vec(),
            child: child.clone(),
        })
    }

    /// Heterogeneous fields at explicit byte displacements
    /// (MPI_Type_create_struct).
    pub fn structure(fields: &[StructField]) -> Result<Datatype> {
        Self::commit(Kind::Struct {
            fields: fields.to_vec(),
        })
    }

    /// An n-dimensional subarray of an n-dimensional array in row-major (C)
    /// order (MPI_Type_create_subarray).
    pub fn subarray(
        sizes: &[usize],
        subsizes: &[usize],
        starts: &[usize],
        child: &Datatype,
    ) -> Result<Datatype> {
        Self::commit(Kind::Subarray {
            sizes: sizes.to_vec(),
            subsizes: subsizes.to_vec(),
            starts: starts.to_vec(),
            child: child.clone(),
        })
    }

    /// Override lower bound and extent (MPI_Type_create_resized).
    pub fn resized(lb: i64, extent: i64, child: &Datatype) -> Result<Datatype> {
        Self::commit(Kind::Resized {
            lb,
            extent,
            child: child.clone(),
        })
    }

    // ----- accessors ----------------------------------------------------

    /// Packed size in bytes of one instance.
    pub fn size(&self) -> usize {
        self.0.size
    }

    /// Extent in bytes (spacing between array elements of this type).
    pub fn extent(&self) -> i64 {
        self.0.extent
    }

    /// Lower bound in bytes.
    pub fn lb(&self) -> i64 {
        self.0.lb
    }

    /// Name of the outermost constructor (for diagnostics and reports).
    pub fn constructor_name(&self) -> &'static str {
        match &self.0.kind {
            Kind::Primitive(_) => "primitive",
            Kind::Contiguous { .. } => "contiguous",
            Kind::Vector { .. } => "vector",
            Kind::Hvector { .. } => "hvector",
            Kind::Indexed { .. } => "indexed",
            Kind::Hindexed { .. } => "hindexed",
            Kind::IndexedBlock { .. } => "indexed_block",
            Kind::Struct { .. } => "struct",
            Kind::Subarray { .. } => "subarray",
            Kind::Resized { .. } => "resized",
        }
    }

    /// Number of maximal contiguous segments per instance — the length of
    /// the type *signature* the engines walk.
    pub fn num_segments(&self) -> usize {
        self.0.segments.len()
    }

    /// The flattened type map of one instance.
    pub fn segments(&self) -> &[Segment] {
        &self.0.segments
    }

    /// Average contiguous segment length in bytes (density measure); 0 for
    /// empty types.
    pub fn avg_segment_len(&self) -> usize {
        if self.0.segments.is_empty() {
            0
        } else {
            self.0.size / self.0.segments.len()
        }
    }

    /// True if every byte of the type map is one contiguous run starting at
    /// offset 0 whose length equals the extent — the fast-path test used to
    /// skip datatype processing entirely.
    pub fn is_contiguous(&self) -> bool {
        self.0.segments.len() <= 1
            && self.0.lb == 0
            && self.0.extent == self.0.size as i64
            && self
                .0
                .segments
                .first()
                .is_none_or(|s| s.offset == 0 && s.len == self.0.size)
    }

    // ----- commit (flatten) ----------------------------------------------

    fn commit(kind: Kind) -> Result<Datatype> {
        validate(&kind)?;
        let mut sink = Sink::new(MAX_SEGMENTS);
        flatten(&kind, 0, &mut sink)?;
        let segments = sink.finish();
        let size: usize = segments.iter().map(|s| s.len).sum();
        let (lb, extent) = match &kind {
            Kind::Resized { lb, extent, .. } => (*lb, *extent),
            _ => {
                // "True extent": from the lowest to the highest byte touched.
                let lb = segments.iter().map(|s| s.offset).min().unwrap_or(0);
                let ub = segments.iter().map(Segment::end).max().unwrap_or(0);
                // Constructors that replicate a child must preserve the
                // child's own (possibly resized) spacing at the tail; using
                // the touched-byte bound is the MPI "true extent", which is
                // what all workloads in this workspace rely on.
                (lb, ub - lb)
            }
        };
        Ok(Datatype(Arc::new(Inner {
            kind,
            size,
            lb,
            extent,
            segments,
        })))
    }
}

fn validate(kind: &Kind) -> Result<()> {
    let fail = |msg: String| Err(TypeError::Invalid(msg));
    match kind {
        Kind::Primitive(_) | Kind::Contiguous { .. } => Ok(()),
        // Overlapping vector blocks (|stride| < blocklen) are legal for
        // sends in MPI; we follow and accept them unconditionally.
        Kind::Vector { .. } => Ok(()),
        Kind::Hvector { .. } | Kind::Indexed { .. } | Kind::Hindexed { .. } => Ok(()),
        Kind::IndexedBlock { .. } | Kind::Struct { .. } => Ok(()),
        Kind::Subarray {
            sizes,
            subsizes,
            starts,
            ..
        } => {
            if sizes.is_empty() {
                return fail("subarray needs at least one dimension".into());
            }
            if sizes.len() != subsizes.len() || sizes.len() != starts.len() {
                return fail(format!(
                    "subarray dimension mismatch: sizes={}, subsizes={}, starts={}",
                    sizes.len(),
                    subsizes.len(),
                    starts.len()
                ));
            }
            for d in 0..sizes.len() {
                if starts[d] + subsizes[d] > sizes[d] {
                    return fail(format!(
                        "subarray dim {d}: start {} + subsize {} exceeds size {}",
                        starts[d], subsizes[d], sizes[d]
                    ));
                }
            }
            Ok(())
        }
        Kind::Resized { extent, .. } => {
            if *extent < 0 {
                fail("negative extents are not supported".into())
            } else {
                Ok(())
            }
        }
    }
}

/// Coalescing segment sink: adjacent-in-memory, consecutive-in-pack-order
/// pieces are merged, exactly like an MPI implementation's flattened iovec.
struct Sink {
    segs: Vec<Segment>,
    limit: usize,
}

impl Sink {
    fn new(limit: usize) -> Self {
        Sink {
            segs: Vec::new(),
            limit,
        }
    }

    fn push(&mut self, offset: i64, len: usize) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        if let Some(last) = self.segs.last_mut() {
            if last.end() == offset {
                last.len += len;
                return Ok(());
            }
        }
        if self.segs.len() >= self.limit {
            return Err(TypeError::TooManySegments {
                segments: self.segs.len() + 1,
                limit: self.limit,
            });
        }
        self.segs.push(Segment { offset, len });
        Ok(())
    }

    fn finish(self) -> Vec<Segment> {
        self.segs
    }
}

fn flatten_child_run(child: &Datatype, base: i64, n: usize, sink: &mut Sink) -> Result<()> {
    for i in 0..n {
        flatten_committed(child, base + i as i64 * child.extent(), sink)?;
    }
    Ok(())
}

/// Re-emit an already committed child's segments at a displacement.
fn flatten_committed(child: &Datatype, base: i64, sink: &mut Sink) -> Result<()> {
    for s in child.segments() {
        sink.push(base + s.offset, s.len)?;
    }
    Ok(())
}

fn flatten(kind: &Kind, base: i64, sink: &mut Sink) -> Result<()> {
    match kind {
        Kind::Primitive(p) => sink.push(base, p.size()),
        Kind::Contiguous { count, child } => flatten_child_run(child, base, *count, sink),
        Kind::Vector {
            count,
            blocklen,
            stride,
            child,
        } => {
            for i in 0..*count {
                let block_base = base + *stride * i as i64 * child.extent();
                flatten_child_run(child, block_base, *blocklen, sink)?;
            }
            Ok(())
        }
        Kind::Hvector {
            count,
            blocklen,
            stride_bytes,
            child,
        } => {
            for i in 0..*count {
                let block_base = base + *stride_bytes * i as i64;
                flatten_child_run(child, block_base, *blocklen, sink)?;
            }
            Ok(())
        }
        Kind::Indexed { blocks, child } => {
            for &(disp, blocklen) in blocks {
                flatten_child_run(child, base + disp * child.extent(), blocklen, sink)?;
            }
            Ok(())
        }
        Kind::Hindexed { blocks, child } => {
            for &(disp, blocklen) in blocks {
                flatten_child_run(child, base + disp, blocklen, sink)?;
            }
            Ok(())
        }
        Kind::IndexedBlock {
            blocklen,
            disps,
            child,
        } => {
            for &disp in disps {
                flatten_child_run(child, base + disp * child.extent(), *blocklen, sink)?;
            }
            Ok(())
        }
        Kind::Struct { fields } => {
            for f in fields {
                flatten_child_run(&f.dtype, base + f.disp, f.count, sink)?;
            }
            Ok(())
        }
        Kind::Subarray {
            sizes,
            subsizes,
            starts,
            child,
        } => {
            // Row-major strides in child extents.
            let ndims = sizes.len();
            let mut strides = vec![1i64; ndims];
            for d in (0..ndims.saturating_sub(1)).rev() {
                strides[d] = strides[d + 1] * sizes[d + 1] as i64;
            }
            subarray_walk(sizes, subsizes, starts, &strides, child, 0, base, sink)
        }
        Kind::Resized { child, .. } => flatten_committed(child, base, sink),
    }
}

#[allow(clippy::too_many_arguments)]
fn subarray_walk(
    sizes: &[usize],
    subsizes: &[usize],
    starts: &[usize],
    strides: &[i64],
    child: &Datatype,
    dim: i64,
    base: i64,
    sink: &mut Sink,
) -> Result<()> {
    let d = dim as usize;
    let ext = child.extent();
    if d == sizes.len() - 1 {
        // Innermost dimension: a contiguous run of children.
        let run_base = base + starts[d] as i64 * ext;
        flatten_child_run(child, run_base, subsizes[d], sink)
    } else {
        for i in 0..subsizes[d] {
            let next = base + (starts[d] + i) as i64 * strides[d] * ext;
            subarray_walk(sizes, subsizes, starts, strides, child, dim + 1, next, sink)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(Datatype::double().size(), 8);
        assert_eq!(Datatype::float().size(), 4);
        assert_eq!(Datatype::int32().size(), 4);
        assert_eq!(Datatype::int64().size(), 8);
        assert_eq!(Datatype::byte().size(), 1);
        assert!(Datatype::double().is_contiguous());
    }

    #[test]
    fn contiguous_coalesces_to_one_segment() {
        let t = Datatype::contiguous(10, &Datatype::double()).unwrap();
        assert_eq!(t.size(), 80);
        assert_eq!(t.extent(), 80);
        assert_eq!(t.num_segments(), 1);
        assert!(t.is_contiguous());
    }

    #[test]
    fn vector_column_of_matrix() {
        // First column of an 8x8 matrix of 3-double elements (paper Fig 6):
        // element = contiguous(3 doubles); column = vector(count=8,
        // blocklen=1, stride=8) of elements.
        let elem = Datatype::contiguous(3, &Datatype::double()).unwrap();
        let col = Datatype::vector(8, 1, 8, &elem).unwrap();
        assert_eq!(col.size(), 8 * 24);
        assert_eq!(col.num_segments(), 8);
        assert_eq!(col.segments()[0], Segment { offset: 0, len: 24 });
        assert_eq!(
            col.segments()[1],
            Segment {
                offset: 8 * 24,
                len: 24
            }
        );
        // Extent spans to the end of the last block.
        assert_eq!(col.extent(), 7 * 8 * 24 + 24);
        assert!(!col.is_contiguous());
    }

    #[test]
    fn vector_with_blocklen_equal_stride_is_contiguous() {
        let t = Datatype::vector(4, 3, 3, &Datatype::double()).unwrap();
        assert_eq!(t.num_segments(), 1);
        assert_eq!(t.size(), 96);
    }

    #[test]
    fn hvector_matches_vector_when_stride_scaled() {
        let d = Datatype::double();
        let v = Datatype::vector(5, 2, 4, &d).unwrap();
        let h = Datatype::hvector(5, 2, 32, &d).unwrap();
        assert_eq!(v.segments(), h.segments());
        assert_eq!(v.size(), h.size());
    }

    #[test]
    fn indexed_blocks() {
        let d = Datatype::double();
        let t = Datatype::indexed(&[(0, 2), (5, 1), (9, 3)], &d).unwrap();
        assert_eq!(t.size(), 48);
        assert_eq!(t.num_segments(), 3);
        assert_eq!(t.segments()[1], Segment { offset: 40, len: 8 });
        assert_eq!(
            t.segments()[2],
            Segment {
                offset: 72,
                len: 24
            }
        );
    }

    #[test]
    fn indexed_adjacent_blocks_coalesce() {
        let d = Datatype::double();
        let t = Datatype::indexed(&[(0, 2), (2, 3)], &d).unwrap();
        assert_eq!(t.num_segments(), 1);
        assert_eq!(t.size(), 40);
    }

    #[test]
    fn hindexed_is_byte_displaced() {
        let d = Datatype::double();
        let t = Datatype::hindexed(&[(4, 1), (100, 2)], &d).unwrap();
        assert_eq!(t.segments()[0], Segment { offset: 4, len: 8 });
        assert_eq!(
            t.segments()[1],
            Segment {
                offset: 100,
                len: 16
            }
        );
    }

    #[test]
    fn indexed_block_type() {
        let d = Datatype::double();
        let t = Datatype::indexed_block(2, &[0, 10, 20], &d).unwrap();
        assert_eq!(t.size(), 48);
        assert_eq!(t.num_segments(), 3);
        assert_eq!(t.segments()[1].offset, 80);
    }

    #[test]
    fn struct_fields_at_displacements() {
        let t = Datatype::structure(&[
            StructField {
                disp: 0,
                count: 1,
                dtype: Datatype::int32(),
            },
            StructField {
                disp: 8,
                count: 2,
                dtype: Datatype::double(),
            },
        ])
        .unwrap();
        assert_eq!(t.size(), 20);
        assert_eq!(t.num_segments(), 2);
        assert_eq!(t.segments()[1], Segment { offset: 8, len: 16 });
    }

    #[test]
    fn subarray_2d_interior_block() {
        // 4x6 array of doubles, take the 2x3 block starting at (1,2).
        let t = Datatype::subarray(&[4, 6], &[2, 3], &[1, 2], &Datatype::double()).unwrap();
        assert_eq!(t.size(), 2 * 3 * 8);
        assert_eq!(t.num_segments(), 2);
        assert_eq!(
            t.segments()[0],
            Segment {
                offset: (6 + 2) * 8,
                len: 24
            }
        );
        assert_eq!(
            t.segments()[1],
            Segment {
                offset: (12 + 2) * 8,
                len: 24
            }
        );
    }

    #[test]
    fn subarray_full_row_coalesces() {
        let t = Datatype::subarray(&[4, 6], &[2, 6], &[1, 0], &Datatype::double()).unwrap();
        // Two full adjacent rows are one contiguous run.
        assert_eq!(t.num_segments(), 1);
        assert_eq!(t.size(), 96);
    }

    #[test]
    fn subarray_3d() {
        let t =
            Datatype::subarray(&[3, 4, 5], &[2, 2, 2], &[0, 1, 1], &Datatype::double()).unwrap();
        assert_eq!(t.size(), 8 * 8);
        assert_eq!(t.num_segments(), 4); // 2x2 rows of length-2 runs
        assert_eq!(t.segments()[0].offset, (5 + 1) as i64 * 8);
    }

    #[test]
    fn subarray_validation() {
        let d = Datatype::double();
        assert!(Datatype::subarray(&[4], &[5], &[0], &d).is_err());
        assert!(Datatype::subarray(&[4], &[2], &[3], &d).is_err());
        assert!(Datatype::subarray(&[4, 4], &[2], &[0], &d).is_err());
        assert!(Datatype::subarray(&[], &[], &[], &d).is_err());
    }

    #[test]
    fn resized_overrides_extent() {
        // A column datatype resized so that consecutive instances are one
        // element apart — the standard idiom for sending many columns.
        let elem = Datatype::contiguous(3, &Datatype::double()).unwrap();
        let col = Datatype::vector(8, 1, 8, &elem).unwrap();
        let col_r = Datatype::resized(0, 24, &col).unwrap();
        assert_eq!(col_r.extent(), 24);
        assert_eq!(col_r.size(), col.size());
        assert_eq!(col_r.segments(), col.segments());
        assert!(Datatype::resized(0, -8, &col).is_err());
    }

    #[test]
    fn nested_vector_of_vectors() {
        let inner = Datatype::vector(2, 1, 2, &Datatype::double()).unwrap(); // 2 doubles, gap between
        let outer = Datatype::contiguous(3, &inner).unwrap();
        assert_eq!(outer.size(), 3 * 16);
        // inner extent = 24 (true extent 0..24); instances at 0, 24, 48 with
        // segments at +0 and +16. The +16 segment of one instance abuts the
        // +0 segment of the next, so they coalesce: (0,8) (16,16) (40,16)
        // (64,8).
        assert_eq!(outer.num_segments(), 4);
        assert_eq!(
            outer.segments()[1],
            Segment {
                offset: 16,
                len: 16
            }
        );
    }

    #[test]
    fn empty_types() {
        let t = Datatype::contiguous(0, &Datatype::double()).unwrap();
        assert_eq!(t.size(), 0);
        assert_eq!(t.num_segments(), 0);
        assert_eq!(t.extent(), 0);
        let v = Datatype::vector(3, 0, 5, &Datatype::double()).unwrap();
        assert_eq!(v.size(), 0);
    }

    #[test]
    fn avg_segment_len() {
        let elem = Datatype::contiguous(3, &Datatype::double()).unwrap();
        let col = Datatype::vector(8, 1, 8, &elem).unwrap();
        assert_eq!(col.avg_segment_len(), 24);
        assert_eq!(
            Datatype::contiguous(0, &Datatype::double())
                .unwrap()
                .avg_segment_len(),
            0
        );
    }

    #[test]
    fn segment_limit_enforced() {
        // A vector with many single-byte blocks far apart. Keep it under
        // the real MAX_SEGMENTS but verify the error path via a tiny sink.
        let mut sink = Sink::new(2);
        sink.push(0, 1).unwrap();
        sink.push(10, 1).unwrap();
        assert!(matches!(
            sink.push(20, 1),
            Err(TypeError::TooManySegments { .. })
        ));
    }
}
