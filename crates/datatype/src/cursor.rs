//! Datatype *contexts*: resumable positions inside a (type, count) stream.
//!
//! A [`TypeCursor`] is what the paper calls a **context** — a snapshot of
//! how far a derived datatype (replicated `count` times, as in an MPI send
//! with a count argument) has been processed, measured in *packed bytes*.
//! The cursor yields contiguous memory ranges in pack order, can *peek*
//! ahead without committing, can be cheaply cloned (a snapshot — this is
//! what makes the dual-context design O(1)), and can be *searched*: reset
//! to the beginning and walked forward segment by segment until a target
//! packed offset is reached, counting the segments visited. The search walk
//! is exactly the baseline engine's recovery path whose cost grows linearly
//! per block and therefore quadratically per message.

use crate::desc::Datatype;

/// A contiguous range of user-buffer memory produced by cursor traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRange {
    /// Byte offset from the start of the user buffer.
    pub offset: i64,
    /// Length in bytes.
    pub len: usize,
}

/// A resumable position within `count` replicas of a datatype.
#[derive(Clone, Debug)]
pub struct TypeCursor {
    dt: Datatype,
    count: usize,
    /// Which replica we are in.
    rep: usize,
    /// Which segment of the replica.
    seg: usize,
    /// Byte offset within that segment.
    seg_off: usize,
    /// Total packed bytes already consumed.
    packed: usize,
}

impl TypeCursor {
    pub fn new(dt: &Datatype, count: usize) -> Self {
        TypeCursor {
            dt: dt.clone(),
            count,
            rep: 0,
            seg: 0,
            seg_off: 0,
            packed: 0,
        }
    }

    /// Total packed bytes the full (type, count) stream contains.
    pub fn total_bytes(&self) -> usize {
        self.dt.size() * self.count
    }

    /// Packed bytes consumed so far — the cursor's position.
    pub fn packed_offset(&self) -> usize {
        self.packed
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.total_bytes() - self.packed
    }

    pub fn is_done(&self) -> bool {
        self.dt.size() == 0 || self.count == 0 || self.packed >= self.total_bytes()
    }

    pub fn datatype(&self) -> &Datatype {
        &self.dt
    }

    fn current_segment(&self) -> Option<MemRange> {
        if self.is_done() {
            return None;
        }
        let seg = self.dt.segments()[self.seg];
        let base = self.rep as i64 * self.dt.extent();
        Some(MemRange {
            offset: base + seg.offset + self.seg_off as i64,
            len: seg.len - self.seg_off,
        })
    }

    fn step_segment(&mut self) {
        self.seg_off = 0;
        self.seg += 1;
        if self.seg == self.dt.num_segments() {
            self.seg = 0;
            self.rep += 1;
        }
    }

    /// Consume and return the next contiguous range, limited to `max_len`
    /// bytes. Returns `None` when the stream is exhausted.
    pub fn next_range(&mut self, max_len: usize) -> Option<MemRange> {
        if max_len == 0 {
            return None;
        }
        let cur = self.current_segment()?;
        let take = cur.len.min(max_len);
        self.seg_off += take;
        self.packed += take;
        if self.seg_off == self.dt.segments()[self.seg].len {
            self.step_segment();
        }
        Some(MemRange {
            offset: cur.offset,
            len: take,
        })
    }

    /// Peek at up to `max_segments` upcoming ranges, visiting at most
    /// `max_bytes`, without moving the cursor. Returns the ranges and the
    /// number of *segments visited* (the signature-parse work a look-ahead
    /// pays for).
    pub fn peek(&self, max_segments: usize, max_bytes: usize) -> (Vec<MemRange>, u64) {
        let mut probe = self.clone();
        let mut out = Vec::new();
        let mut bytes = 0usize;
        while out.len() < max_segments && bytes < max_bytes {
            match probe.next_range(max_bytes - bytes) {
                Some(r) => {
                    bytes += r.len;
                    out.push(r);
                }
                None => break,
            }
        }
        let visited = out.len() as u64;
        (out, visited)
    }

    /// Ordinal of the segment the cursor currently sits in, counted across
    /// replicas (`replica * segments_per_replica + segment`). Observability
    /// uses this to label where a pipeline block's window began.
    pub fn segment_ordinal(&self) -> u64 {
        (self.rep * self.dt.num_segments() + self.seg) as u64
    }

    /// Rewind to the beginning of the stream.
    pub fn rewind(&mut self) {
        self.rep = 0;
        self.seg = 0;
        self.seg_off = 0;
        self.packed = 0;
    }

    /// Walk forward from the current position until `target` packed bytes
    /// have been consumed, counting segments visited. Only the signature is
    /// walked (no data is touched); the count is what a cost model charges
    /// per visited segment.
    ///
    /// Panics if `target` is behind the current position or beyond the end.
    pub fn advance_to(&mut self, target: usize) -> u64 {
        assert!(
            target >= self.packed,
            "advance_to goes forward only ({} -> {target})",
            self.packed
        );
        assert!(target <= self.total_bytes(), "target beyond stream end");
        let mut visited = 0u64;
        while self.packed < target {
            let cur = self
                .current_segment()
                .expect("stream ended before target despite bound check");
            visited += 1;
            let take = cur.len.min(target - self.packed);
            self.seg_off += take;
            self.packed += take;
            if self.seg_off == self.dt.segments()[self.seg].len {
                self.step_segment();
            }
        }
        visited
    }

    /// The baseline engine's recovery path: rewind and re-search the whole
    /// datatype from the start until `target` packed bytes. Returns segments
    /// visited — a cost that grows linearly with `target`.
    pub fn search_from_start(&mut self, target: usize) -> u64 {
        self.rewind();
        self.advance_to(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column_type() -> Datatype {
        // 8 elements of 24 bytes, stride 8 elements (one matrix column).
        let elem = Datatype::contiguous(3, &Datatype::double()).unwrap();
        Datatype::vector(8, 1, 8, &elem).unwrap()
    }

    #[test]
    fn walks_all_bytes_in_order() {
        let col = column_type();
        let mut c = TypeCursor::new(&col, 1);
        assert_eq!(c.total_bytes(), 192);
        let mut seen = 0;
        let mut last_end = i64::MIN;
        while let Some(r) = c.next_range(usize::MAX) {
            assert!(r.offset >= last_end);
            last_end = r.offset + r.len as i64;
            seen += r.len;
        }
        assert_eq!(seen, 192);
        assert!(c.is_done());
        assert_eq!(c.next_range(100), None);
    }

    #[test]
    fn max_len_splits_segments() {
        let col = column_type();
        let mut c = TypeCursor::new(&col, 1);
        let r1 = c.next_range(10).unwrap();
        assert_eq!((r1.offset, r1.len), (0, 10));
        let r2 = c.next_range(10).unwrap();
        assert_eq!((r2.offset, r2.len), (10, 10));
        let r3 = c.next_range(10).unwrap();
        assert_eq!((r3.offset, r3.len), (20, 4)); // finishes the 24-byte segment
        let r4 = c.next_range(10).unwrap();
        assert_eq!(r4.offset, 8 * 24); // next block of the vector
        assert_eq!(c.packed_offset(), 34);
    }

    #[test]
    fn replicas_shift_by_extent() {
        let elem = Datatype::contiguous(3, &Datatype::double()).unwrap();
        let col = Datatype::vector(8, 1, 8, &elem).unwrap();
        let col_r = Datatype::resized(0, 24, &col).unwrap();
        let mut c = TypeCursor::new(&col_r, 3);
        assert_eq!(c.total_bytes(), 3 * 192);
        // Skip the first replica (8 segments).
        for _ in 0..8 {
            c.next_range(usize::MAX).unwrap();
        }
        let r = c.next_range(usize::MAX).unwrap();
        // Second replica starts one element (24 bytes) over.
        assert_eq!(r.offset, 24);
    }

    #[test]
    fn peek_does_not_advance() {
        let col = column_type();
        let c = TypeCursor::new(&col, 1);
        let (ranges, visited) = c.peek(3, usize::MAX);
        assert_eq!(ranges.len(), 3);
        assert_eq!(visited, 3);
        assert_eq!(c.packed_offset(), 0);
        let (ranges2, _) = c.peek(100, 50);
        // 24 + 24 + 2 bytes = 50 -> 3 ranges, last truncated
        assert_eq!(ranges2.len(), 3);
        assert_eq!(ranges2[2].len, 2);
    }

    #[test]
    fn advance_to_counts_segments() {
        let col = column_type();
        let mut c = TypeCursor::new(&col, 1);
        // 100 bytes = 4 segments of 24 plus 4 bytes into the 5th.
        let visited = c.advance_to(100);
        assert_eq!(visited, 5);
        assert_eq!(c.packed_offset(), 100);
        // Continue to the end.
        let v2 = c.advance_to(192);
        assert_eq!(v2, 4); // finish seg 5 + segs 6,7,8
        assert!(c.is_done());
    }

    #[test]
    fn search_from_start_cost_grows_with_target() {
        let col = column_type();
        let mut c = TypeCursor::new(&col, 4);
        let v1 = c.search_from_start(48);
        let v2 = c.search_from_start(480);
        assert!(v2 > v1);
        assert_eq!(c.packed_offset(), 480);
        // Searching to the very end visits all 32 segments.
        assert_eq!(c.search_from_start(4 * 192), 32);
    }

    #[test]
    fn advance_to_zero_visits_nothing() {
        let col = column_type();
        let mut c = TypeCursor::new(&col, 1);
        assert_eq!(c.advance_to(0), 0);
        assert_eq!(c.packed_offset(), 0);
    }

    #[test]
    #[should_panic(expected = "forward only")]
    fn advance_backwards_panics() {
        let col = column_type();
        let mut c = TypeCursor::new(&col, 1);
        c.advance_to(50);
        c.advance_to(10);
    }

    #[test]
    fn empty_type_is_immediately_done() {
        let t = Datatype::contiguous(0, &Datatype::double()).unwrap();
        let mut c = TypeCursor::new(&t, 5);
        assert!(c.is_done());
        assert_eq!(c.next_range(usize::MAX), None);
        assert_eq!(c.total_bytes(), 0);
    }

    #[test]
    fn clone_is_independent_snapshot() {
        let col = column_type();
        let mut a = TypeCursor::new(&col, 1);
        a.advance_to(30);
        let b = a.clone();
        a.advance_to(100);
        assert_eq!(b.packed_offset(), 30);
        assert_eq!(a.packed_offset(), 100);
    }
}
