//! Error type for datatype construction and processing.

use std::fmt;

/// Errors produced while building or processing derived datatypes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A constructor was given inconsistent arguments (message explains).
    Invalid(String),
    /// Committing the type would materialize more contiguous segments than
    /// the configured safety limit.
    TooManySegments { segments: usize, limit: usize },
    /// A pack/unpack touched memory outside the supplied buffer.
    OutOfBounds {
        offset: i64,
        len: usize,
        buf_len: usize,
    },
    /// The byte stream handed to an unpacker was longer than the receive
    /// type can absorb.
    StreamOverrun { extra: usize },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Invalid(msg) => write!(f, "invalid datatype: {msg}"),
            TypeError::TooManySegments { segments, limit } => write!(
                f,
                "datatype flattens to {segments} segments, exceeding the limit of {limit}"
            ),
            TypeError::OutOfBounds {
                offset,
                len,
                buf_len,
            } => write!(
                f,
                "datatype touches [{offset}, {}) outside buffer of {buf_len} bytes",
                offset + *len as i64
            ),
            TypeError::StreamOverrun { extra } => {
                write!(f, "unpack stream has {extra} bytes beyond the receive type")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TypeError>;
