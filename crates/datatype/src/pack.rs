//! Whole-message pack/unpack conveniences (the non-pipelined
//! `MPI_Pack`/`MPI_Unpack` equivalents), plus helpers for building common
//! layouts used throughout the workspace.

use crate::cursor::TypeCursor;
use crate::desc::Datatype;
use crate::engine::{EngineKind, EngineParams, OpCounts};
use crate::error::{Result, TypeError};
use crate::observe::PackObserver;

/// Pack `count` instances of `dt` from `src` into a fresh contiguous buffer.
pub fn pack_all(dt: &Datatype, count: usize, src: &[u8]) -> Result<Vec<u8>> {
    let mut cursor = TypeCursor::new(dt, count);
    let mut out = Vec::with_capacity(cursor.total_bytes());
    while let Some(r) = cursor.next_range(usize::MAX) {
        if r.offset < 0 || (r.offset as usize) + r.len > src.len() {
            return Err(TypeError::OutOfBounds {
                offset: r.offset,
                len: r.len,
                buf_len: src.len(),
            });
        }
        out.extend_from_slice(&src[r.offset as usize..r.offset as usize + r.len]);
    }
    Ok(out)
}

/// Pack `count` instances of `dt` through a pipelined engine while an
/// observer watches every block — the profiling entry point behind
/// `examples/pack_profile.rs` and `datatype_report()`. Returns the packed
/// bytes and the engine's executed-operation counts.
pub fn pack_all_profiled(
    kind: EngineKind,
    dt: &Datatype,
    count: usize,
    params: EngineParams,
    src: &[u8],
    observer: &mut dyn PackObserver,
) -> Result<(Vec<u8>, OpCounts)> {
    let mut engine = kind.build(dt, count, params);
    let mut counts = OpCounts::default();
    let bytes = engine.pack_all_observed(src, &mut counts, observer)?;
    Ok((bytes, counts))
}

/// Unpack a contiguous `bytes` stream into `count` instances of `dt` laid
/// out in `dst`. The stream may be shorter than the type (partial receive)
/// but not longer.
pub fn unpack_all(dt: &Datatype, count: usize, dst: &mut [u8], bytes: &[u8]) -> Result<()> {
    let mut u = crate::engine::Unpacker::new(dt, count);
    u.unpack(dst, bytes)?;
    Ok(())
}

/// The paper's canonical noncontiguous example (Figures 4–6): the datatype
/// of one column of a `rows x cols` matrix whose elements are
/// `doubles_per_elem` doubles, stored row-major.
///
/// The returned type is resized to one element's extent so that `cols`
/// consecutive instances describe the whole matrix column-by-column — the
/// send side of the matrix-transpose benchmark (§5.2).
pub fn matrix_column_type(rows: usize, cols: usize, doubles_per_elem: usize) -> Result<Datatype> {
    let elem = Datatype::contiguous(doubles_per_elem, &Datatype::double())?;
    let col = Datatype::vector(rows, 1, cols as i64, &elem)?;
    Datatype::resized(0, elem.extent(), &col)
}

/// Build an hindexed datatype over `f64` slots from element indices,
/// coalescing runs of consecutive indices into blocks — how the PETSc layer
/// converts an index list into a datatype.
pub fn hindexed_from_f64_indices(indices: &[usize]) -> Result<Datatype> {
    let mut blocks: Vec<(i64, usize)> = Vec::new();
    for &ix in indices {
        match blocks.last_mut() {
            Some((disp, len)) if *disp + *len as i64 == ix as i64 => *len += 1,
            _ => blocks.push((ix as i64, 1)),
        }
    }
    let byte_blocks: Vec<(i64, usize)> = blocks
        .into_iter()
        .map(|(disp, len)| (disp * 8, len))
        .collect();
    Datatype::hindexed(&byte_blocks, &Datatype::double())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip_on_matrix_column() {
        let (rows, cols, dpe) = (8, 8, 3);
        let n = rows * cols * dpe * 8;
        let src: Vec<u8> = (0..n).map(|i| (i % 249) as u8).collect();
        let dt = matrix_column_type(rows, cols, dpe).unwrap();
        // All `cols` columns = the whole matrix, transposed in pack order.
        let packed = pack_all(&dt, cols, &src).unwrap();
        assert_eq!(packed.len(), n);

        let mut dst = vec![0u8; n];
        unpack_all(&dt, cols, &mut dst, &packed).unwrap();
        assert_eq!(dst, src);
    }

    #[test]
    fn matrix_column_type_shape() {
        let dt = matrix_column_type(8, 8, 3).unwrap();
        assert_eq!(dt.size(), 8 * 24);
        assert_eq!(dt.extent(), 24);
        assert_eq!(dt.num_segments(), 8);
    }

    #[test]
    fn pack_all_out_of_bounds() {
        let dt = matrix_column_type(8, 8, 3).unwrap();
        assert!(pack_all(&dt, 8, &[0u8; 16]).is_err());
    }

    #[test]
    fn hindexed_from_indices_coalesces_runs() {
        let dt = hindexed_from_f64_indices(&[0, 1, 2, 5, 6, 10]).unwrap();
        assert_eq!(dt.num_segments(), 3);
        assert_eq!(dt.size(), 6 * 8);
        assert_eq!(dt.segments()[0].len, 24);
        assert_eq!(dt.segments()[1].offset, 40);
        assert_eq!(dt.segments()[2].offset, 80);
    }

    #[test]
    fn hindexed_from_indices_empty() {
        let dt = hindexed_from_f64_indices(&[]).unwrap();
        assert_eq!(dt.size(), 0);
        assert_eq!(dt.num_segments(), 0);
    }

    #[test]
    fn pack_all_profiled_matches_plain_pack() {
        use crate::observe::BlockLog;
        let dt = matrix_column_type(8, 8, 3).unwrap();
        let n = 8 * 8 * 24;
        let src: Vec<u8> = (0..n).map(|i| (i % 241) as u8).collect();
        let expected = pack_all(&dt, 8, &src).unwrap();
        for kind in [EngineKind::SingleContext, EngineKind::DualContext] {
            let mut log = BlockLog::new();
            let (bytes, counts) =
                pack_all_profiled(kind, &dt, 8, EngineParams::default(), &src, &mut log).unwrap();
            assert_eq!(bytes, expected);
            assert_eq!(log.total_bytes(), counts.total_bytes());
            assert!(!log.blocks.is_empty());
        }
    }

    #[test]
    fn partial_unpack_is_allowed() {
        let dt = matrix_column_type(4, 4, 1).unwrap();
        let src: Vec<u8> = (0..128).map(|i| i as u8).collect();
        let packed = pack_all(&dt, 1, &src).unwrap();
        let mut dst = vec![0u8; 128];
        // Only the first half of the stream.
        unpack_all(&dt, 1, &mut dst, &packed[..16]).unwrap();
        assert_eq!(&dst[0..8], &src[0..8]);
    }
}
