//! Pipelined pack engines: the baseline single-context design and the
//! paper's dual-context look-ahead design (§4.1).
//!
//! Both engines produce the message byte stream in pipeline *blocks*. Before
//! each block they **look ahead** over the upcoming portion of the datatype
//! signature to classify it as *dense* (long contiguous pieces — ship the
//! pieces directly, `writev`-style, without an intermediate copy) or
//! *sparse* (many short pieces — pack them into an intermediate buffer
//! first). The difference is purely in context management:
//!
//! * [`SingleContextEngine`] models MPICH2-at-the-time: there is **one**
//!   context, and the look-ahead advances it. In the dense case that is
//!   harmless (the look-ahead doubles as the iovec walk). In the sparse
//!   case the data must be packed *from the pre-look-ahead position*, which
//!   the single context no longer holds — so the engine **re-searches the
//!   datatype from the very beginning** to recover it. The search work per
//!   block grows linearly with the position, hence quadratically over the
//!   message. This is the pathology of Figures 12–13.
//!
//! * [`DualContextEngine`] is the paper's fix: a look-ahead context parses
//!   the upcoming signature while a separate pack context stays at the pack
//!   position. The look-ahead work is bounded by a small window (15
//!   segments, the constant the paper reports), so it is near-constant per
//!   block and no search is ever performed.
//!
//! Engines return [`OpCounts`] — real, executed operation counts — which the
//! communication layer converts into simulated time.

use crate::cursor::{MemRange, TypeCursor};
use crate::desc::Datatype;
use crate::error::{Result, TypeError};
use crate::observe::{BlockObservation, NullObserver, PackObserver};

/// Tunables of the pipeline and density classifier.
#[derive(Clone, Debug)]
pub struct EngineParams {
    /// Pipeline granularity: maximum packed bytes per block.
    pub block_size: usize,
    /// Look-ahead window in segments (the paper uses ~15 elements).
    pub lookahead_segments: usize,
    /// A look-ahead window whose average contiguous piece is at least this
    /// many bytes is classified *dense* (sent without an intermediate copy).
    pub dense_threshold: usize,
}

impl Default for EngineParams {
    fn default() -> Self {
        EngineParams {
            block_size: 64 * 1024,
            lookahead_segments: 15,
            dense_threshold: 512,
        }
    }
}

/// Executed-operation counters for one pack (or unpack) stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Segments walked while re-searching a lost context (baseline only).
    pub searched_segments: u64,
    /// Segments walked by look-ahead classification (signature only).
    pub lookahead_segments: u64,
    /// Segments copied through an intermediate buffer.
    pub packed_segments: u64,
    /// Bytes copied through an intermediate buffer.
    pub packed_bytes: u64,
    /// Segments shipped directly (gather/writev path, no copy).
    pub direct_segments: u64,
    /// Bytes shipped directly.
    pub direct_bytes: u64,
    /// Pipeline blocks that went through the intermediate-copy path.
    pub packed_blocks: u64,
    /// Pipeline blocks shipped directly from user memory.
    pub direct_blocks: u64,
}

impl OpCounts {
    pub fn merge(&mut self, o: &OpCounts) {
        self.searched_segments += o.searched_segments;
        self.lookahead_segments += o.lookahead_segments;
        self.packed_segments += o.packed_segments;
        self.packed_bytes += o.packed_bytes;
        self.direct_segments += o.direct_segments;
        self.direct_bytes += o.direct_bytes;
        self.packed_blocks += o.packed_blocks;
        self.direct_blocks += o.direct_blocks;
    }

    pub fn total_bytes(&self) -> u64 {
        self.packed_bytes + self.direct_bytes
    }
}

/// How a block left the sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockMode {
    /// Copied into an intermediate buffer before hitting the wire.
    Packed,
    /// Gathered directly from user memory (writev-style).
    Direct,
}

/// One pipeline block: the bytes plus how they were produced.
#[derive(Clone, Debug)]
pub struct Block {
    pub data: Vec<u8>,
    pub mode: BlockMode,
}

/// A pipelined pack engine over `count` replicas of a datatype.
pub trait PackEngine {
    /// Engine name for reports ("single-context", "dual-context").
    fn name(&self) -> &'static str;

    /// Produce the next pipeline block from `src`, or `None` when the
    /// message is complete. Operation counts accumulate into `counts`, and
    /// `observer` receives one [`BlockObservation`] per produced block.
    fn next_block_observed(
        &mut self,
        src: &[u8],
        counts: &mut OpCounts,
        observer: &mut dyn PackObserver,
    ) -> Result<Option<Block>>;

    /// Produce the next pipeline block without observation.
    fn next_block(&mut self, src: &[u8], counts: &mut OpCounts) -> Result<Option<Block>> {
        self.next_block_observed(src, counts, &mut NullObserver)
    }

    /// Drain the whole stream, concatenating all blocks (convenience for
    /// tests and non-pipelined callers).
    fn pack_all(&mut self, src: &[u8], counts: &mut OpCounts) -> Result<Vec<u8>> {
        self.pack_all_observed(src, counts, &mut NullObserver)
    }

    /// Drain the whole stream under observation.
    fn pack_all_observed(
        &mut self,
        src: &[u8],
        counts: &mut OpCounts,
        observer: &mut dyn PackObserver,
    ) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(b) = self.next_block_observed(src, counts, observer)? {
            out.extend_from_slice(&b.data);
        }
        Ok(out)
    }
}

/// Copy `ranges` out of `src` appending to `out`; bounds-checked.
fn gather(src: &[u8], ranges: &[MemRange], out: &mut Vec<u8>) -> Result<()> {
    for r in ranges {
        let start = r.offset;
        if start < 0 || (start as usize) + r.len > src.len() {
            return Err(TypeError::OutOfBounds {
                offset: start,
                len: r.len,
                buf_len: src.len(),
            });
        }
        out.extend_from_slice(&src[start as usize..start as usize + r.len]);
    }
    Ok(())
}

/// Classify a look-ahead window: dense iff the average piece length clears
/// the threshold. Empty windows count as dense (nothing to pack).
fn classify(ranges: &[MemRange], dense_threshold: usize) -> BlockMode {
    if ranges.is_empty() {
        return BlockMode::Direct;
    }
    let bytes: usize = ranges.iter().map(|r| r.len).sum();
    if bytes / ranges.len() >= dense_threshold {
        BlockMode::Direct
    } else {
        BlockMode::Packed
    }
}

/// The faithful baseline: one context, look-ahead steals it, sparse blocks
/// trigger a re-search from the start of the datatype.
pub struct SingleContextEngine {
    cursor: TypeCursor,
    params: EngineParams,
    block_index: u64,
}

impl SingleContextEngine {
    pub fn new(dt: &Datatype, count: usize, params: EngineParams) -> Self {
        SingleContextEngine {
            cursor: TypeCursor::new(dt, count),
            params,
            block_index: 0,
        }
    }
}

impl PackEngine for SingleContextEngine {
    fn name(&self) -> &'static str {
        "single-context"
    }

    fn next_block_observed(
        &mut self,
        src: &[u8],
        counts: &mut OpCounts,
        observer: &mut dyn PackObserver,
    ) -> Result<Option<Block>> {
        if self.cursor.is_done() {
            return Ok(None);
        }
        let pre_lookahead = self.cursor.packed_offset();
        let window_start_segment = self.cursor.segment_ordinal();

        // Look-ahead: advance THE context over the window, recording the
        // ranges seen (they double as the iovec in the dense case).
        let mut window = Vec::with_capacity(self.params.lookahead_segments);
        let mut window_bytes = 0usize;
        while window.len() < self.params.lookahead_segments && window_bytes < self.params.block_size
        {
            match self
                .cursor
                .next_range(self.params.block_size - window_bytes)
            {
                Some(r) => {
                    window_bytes += r.len;
                    window.push(r);
                }
                None => break,
            }
        }
        counts.lookahead_segments += window.len() as u64;

        match classify(&window, self.params.dense_threshold) {
            BlockMode::Direct => {
                // Dense: the look-ahead walk already produced the iovec;
                // ship it directly. Context is consistently past the block.
                let mut data = Vec::with_capacity(window_bytes);
                gather(src, &window, &mut data)?;
                counts.direct_segments += window.len() as u64;
                counts.direct_bytes += window_bytes as u64;
                counts.direct_blocks += 1;
                observer.on_block(&BlockObservation {
                    index: self.block_index,
                    mode: BlockMode::Direct,
                    seek_segments: 0,
                    seek_target: 0,
                    lookahead_segments: window.len() as u64,
                    window_start_segment,
                    bytes: window_bytes as u64,
                });
                self.block_index += 1;
                Ok(Some(Block {
                    data,
                    mode: BlockMode::Direct,
                }))
            }
            BlockMode::Packed => {
                // Sparse: we must pack starting at `pre_lookahead`, but the
                // single context has moved past it. Recover by re-searching
                // the entire datatype from the beginning — the quadratic
                // pathology.
                let seek_segments = self.cursor.search_from_start(pre_lookahead);
                counts.searched_segments += seek_segments;

                let mut data = Vec::with_capacity(self.params.block_size);
                let mut packed = 0usize;
                let mut segs = 0u64;
                while packed < self.params.block_size {
                    match self.cursor.next_range(self.params.block_size - packed) {
                        Some(r) => {
                            gather(src, std::slice::from_ref(&r), &mut data)?;
                            packed += r.len;
                            segs += 1;
                        }
                        None => break,
                    }
                }
                counts.packed_segments += segs;
                counts.packed_bytes += packed as u64;
                counts.packed_blocks += 1;
                observer.on_block(&BlockObservation {
                    index: self.block_index,
                    mode: BlockMode::Packed,
                    seek_segments,
                    seek_target: pre_lookahead as u64,
                    lookahead_segments: window.len() as u64,
                    window_start_segment,
                    bytes: packed as u64,
                });
                self.block_index += 1;
                Ok(Some(Block {
                    data,
                    mode: BlockMode::Packed,
                }))
            }
        }
    }
}

/// The paper's dual-context look-ahead engine: a look-ahead context
/// classifies while a separate pack context keeps the pack position; no
/// search, ever.
pub struct DualContextEngine {
    pack_cursor: TypeCursor,
    params: EngineParams,
    block_index: u64,
}

impl DualContextEngine {
    pub fn new(dt: &Datatype, count: usize, params: EngineParams) -> Self {
        DualContextEngine {
            pack_cursor: TypeCursor::new(dt, count),
            params,
            block_index: 0,
        }
    }
}

impl PackEngine for DualContextEngine {
    fn name(&self) -> &'static str {
        "dual-context"
    }

    fn next_block_observed(
        &mut self,
        src: &[u8],
        counts: &mut OpCounts,
        observer: &mut dyn PackObserver,
    ) -> Result<Option<Block>> {
        if self.pack_cursor.is_done() {
            return Ok(None);
        }
        let window_start_segment = self.pack_cursor.segment_ordinal();

        // Context 1 (look-ahead): a snapshot of the pack context, rolled
        // forward over the signature only. This is the "redundant parsing"
        // the paper accepts: bounded by the window, hence near-constant.
        let (window, visited) = self
            .pack_cursor
            .peek(self.params.lookahead_segments, self.params.block_size);
        counts.lookahead_segments += visited;

        match classify(&window, self.params.dense_threshold) {
            BlockMode::Direct => {
                // Context 2 (pack) walks the same region and ships directly.
                let bytes: usize = window.iter().map(|r| r.len).sum();
                let mut data = Vec::with_capacity(bytes);
                let mut shipped = 0usize;
                let mut segs = 0u64;
                while shipped < bytes {
                    let r = self
                        .pack_cursor
                        .next_range(bytes - shipped)
                        .expect("peek promised these bytes");
                    gather(src, std::slice::from_ref(&r), &mut data)?;
                    shipped += r.len;
                    segs += 1;
                }
                counts.direct_segments += segs;
                counts.direct_bytes += shipped as u64;
                counts.direct_blocks += 1;
                observer.on_block(&BlockObservation {
                    index: self.block_index,
                    mode: BlockMode::Direct,
                    seek_segments: 0,
                    seek_target: 0,
                    lookahead_segments: visited,
                    window_start_segment,
                    bytes: shipped as u64,
                });
                self.block_index += 1;
                Ok(Some(Block {
                    data,
                    mode: BlockMode::Direct,
                }))
            }
            BlockMode::Packed => {
                // Pack a full pipeline block from the pack context. No
                // search: the context never moved.
                let mut data = Vec::with_capacity(self.params.block_size);
                let mut packed = 0usize;
                let mut segs = 0u64;
                while packed < self.params.block_size {
                    match self.pack_cursor.next_range(self.params.block_size - packed) {
                        Some(r) => {
                            gather(src, std::slice::from_ref(&r), &mut data)?;
                            packed += r.len;
                            segs += 1;
                        }
                        None => break,
                    }
                }
                counts.packed_segments += segs;
                counts.packed_bytes += packed as u64;
                counts.packed_blocks += 1;
                observer.on_block(&BlockObservation {
                    index: self.block_index,
                    mode: BlockMode::Packed,
                    seek_segments: 0,
                    seek_target: 0,
                    lookahead_segments: visited,
                    window_start_segment,
                    bytes: packed as u64,
                });
                self.block_index += 1;
                Ok(Some(Block {
                    data,
                    mode: BlockMode::Packed,
                }))
            }
        }
    }
}

/// Which engine a communicator uses — the "MVAPICH2-0.9.5" vs
/// "MVAPICH2-New" switch of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    SingleContext,
    DualContext,
}

impl EngineKind {
    pub fn build(self, dt: &Datatype, count: usize, params: EngineParams) -> Box<dyn PackEngine> {
        match self {
            EngineKind::SingleContext => Box::new(SingleContextEngine::new(dt, count, params)),
            EngineKind::DualContext => Box::new(DualContextEngine::new(dt, count, params)),
        }
    }
}

/// Sequential unpacker for the receive side: writes an incoming byte stream
/// into the noncontiguous layout. Receiving needs no density decisions, so a
/// single forward-only context suffices and no search ever happens.
pub struct Unpacker {
    cursor: TypeCursor,
}

impl Unpacker {
    pub fn new(dt: &Datatype, count: usize) -> Self {
        Unpacker {
            cursor: TypeCursor::new(dt, count),
        }
    }

    /// Scatter `bytes` into `dst` at the current position, advancing it.
    /// Returns per-call op counts (unpack cost mirrors pack cost).
    pub fn unpack(&mut self, dst: &mut [u8], bytes: &[u8]) -> Result<OpCounts> {
        let mut counts = OpCounts::default();
        let mut consumed = 0usize;
        while consumed < bytes.len() {
            let r = match self.cursor.next_range(bytes.len() - consumed) {
                Some(r) => r,
                None => {
                    return Err(TypeError::StreamOverrun {
                        extra: bytes.len() - consumed,
                    })
                }
            };
            if r.offset < 0 || (r.offset as usize) + r.len > dst.len() {
                return Err(TypeError::OutOfBounds {
                    offset: r.offset,
                    len: r.len,
                    buf_len: dst.len(),
                });
            }
            dst[r.offset as usize..r.offset as usize + r.len]
                .copy_from_slice(&bytes[consumed..consumed + r.len]);
            consumed += r.len;
            counts.packed_segments += 1;
        }
        counts.packed_bytes += consumed as u64;
        Ok(counts)
    }

    pub fn is_done(&self) -> bool {
        self.cursor.is_done()
    }

    pub fn remaining(&self) -> usize {
        self.cursor.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8x8 matrix of 3-double elements; the first-column datatype of the
    /// paper's Figures 4-6.
    fn matrix_and_column() -> (Vec<u8>, Datatype) {
        let mut m = vec![0u8; 8 * 8 * 24];
        for (i, b) in m.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let elem = Datatype::contiguous(3, &Datatype::double()).unwrap();
        let col = Datatype::vector(8, 1, 8, &elem).unwrap();
        (m, col)
    }

    fn naive_pack(src: &[u8], dt: &Datatype, count: usize) -> Vec<u8> {
        let mut out = Vec::new();
        let mut c = TypeCursor::new(dt, count);
        while let Some(r) = c.next_range(usize::MAX) {
            out.extend_from_slice(&src[r.offset as usize..r.offset as usize + r.len]);
        }
        out
    }

    #[test]
    fn both_engines_produce_identical_streams() {
        let (m, col) = matrix_and_column();
        let expected = naive_pack(&m, &col, 1);
        for kind in [EngineKind::SingleContext, EngineKind::DualContext] {
            let mut e = kind.build(&col, 1, EngineParams::default());
            let mut counts = OpCounts::default();
            let got = e.pack_all(&m, &mut counts).unwrap();
            assert_eq!(got, expected, "{} diverged", e.name());
            assert_eq!(counts.total_bytes() as usize, expected.len());
        }
    }

    #[test]
    fn sparse_type_single_context_searches_dual_does_not() {
        let (m, col) = matrix_and_column();
        // Small blocks to force several pipeline blocks over a sparse type.
        let params = EngineParams {
            block_size: 48,
            lookahead_segments: 4,
            dense_threshold: 512,
        };
        let mut single = SingleContextEngine::new(&col, 1, params.clone());
        let mut c1 = OpCounts::default();
        single.pack_all(&m, &mut c1).unwrap();
        assert!(c1.searched_segments > 0, "baseline must re-search");

        let mut dual = DualContextEngine::new(&col, 1, params);
        let mut c2 = OpCounts::default();
        dual.pack_all(&m, &mut c2).unwrap();
        assert_eq!(c2.searched_segments, 0, "dual-context never searches");
        assert_eq!(c1.packed_bytes, c2.packed_bytes);
    }

    #[test]
    fn search_grows_quadratically_with_message() {
        // Column type replicated: searched segments should grow ~4x when
        // the message doubles (quadratic), for the single-context engine.
        let elem = Datatype::contiguous(3, &Datatype::double()).unwrap();
        let col = Datatype::vector(64, 1, 64, &elem).unwrap();
        let col_r = Datatype::resized(0, 24, &col).unwrap();
        let params = EngineParams {
            block_size: 256,
            lookahead_segments: 8,
            dense_threshold: 512,
        };
        let search_for = |count: usize| {
            let buf = vec![1u8; 64 * 64 * 24];
            let mut e = SingleContextEngine::new(&col_r, count, params.clone());
            let mut c = OpCounts::default();
            e.pack_all(&buf, &mut c).unwrap();
            c.searched_segments
        };
        let s1 = search_for(16);
        let s2 = search_for(32);
        let ratio = s2 as f64 / s1 as f64;
        assert!(
            (3.0..5.0).contains(&ratio),
            "expected ~4x growth, got {ratio} ({s1} -> {s2})"
        );
    }

    #[test]
    fn dense_type_goes_direct_with_no_copy() {
        // Long contiguous runs: 4 KB rows with gaps.
        let row = Datatype::contiguous(512, &Datatype::double()).unwrap(); // 4096 B
        let t = Datatype::hvector(8, 1, 8192, &row).unwrap();
        let buf = vec![7u8; 8 * 8192];
        for kind in [EngineKind::SingleContext, EngineKind::DualContext] {
            let mut e = kind.build(&t, 1, EngineParams::default());
            let mut c = OpCounts::default();
            let out = e.pack_all(&buf, &mut c).unwrap();
            assert_eq!(out.len(), 8 * 4096);
            assert_eq!(c.packed_bytes, 0, "{}: dense must not copy", e.name());
            assert_eq!(c.direct_bytes, 8 * 4096);
            assert_eq!(c.searched_segments, 0, "{}: dense never searches", e.name());
            assert!(c.direct_blocks > 0 && c.packed_blocks == 0);
        }
    }

    #[test]
    fn blocks_respect_pipeline_granularity() {
        let (m, col) = matrix_and_column();
        let params = EngineParams {
            block_size: 64,
            lookahead_segments: 15,
            dense_threshold: 512,
        };
        let mut e = DualContextEngine::new(&col, 1, params);
        let mut counts = OpCounts::default();
        let mut blocks = Vec::new();
        while let Some(b) = e.next_block(&m, &mut counts).unwrap() {
            assert!(b.data.len() <= 64);
            blocks.push(b);
        }
        assert_eq!(blocks.len(), 3); // 192 bytes / 64
        assert!(blocks.iter().all(|b| b.mode == BlockMode::Packed));
        assert_eq!(counts.packed_blocks, 3);
        assert_eq!(counts.direct_blocks, 0);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let col = matrix_and_column().1;
        let small = vec![0u8; 10];
        let mut e = DualContextEngine::new(&col, 1, EngineParams::default());
        let mut c = OpCounts::default();
        assert!(matches!(
            e.next_block(&small, &mut c),
            Err(TypeError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn unpack_reverses_pack() {
        let (m, col) = matrix_and_column();
        let mut e = DualContextEngine::new(&col, 1, EngineParams::default());
        let mut c = OpCounts::default();
        let packed = e.pack_all(&m, &mut c).unwrap();

        let mut dst = vec![0u8; m.len()];
        let mut u = Unpacker::new(&col, 1);
        u.unpack(&mut dst, &packed).unwrap();
        assert!(u.is_done());

        // The column bytes of dst match m; everything else stayed zero.
        for s in col.segments() {
            assert_eq!(
                &dst[s.offset as usize..s.offset as usize + s.len],
                &m[s.offset as usize..s.offset as usize + s.len]
            );
        }
        let touched: usize = col.segments().iter().map(|s| s.len).sum();
        assert!(dst.iter().filter(|&&b| b != 0).count() <= touched);
    }

    #[test]
    fn unpack_in_pieces_matches_unpack_at_once() {
        let (m, col) = matrix_and_column();
        let packed = naive_pack(&m, &col, 1);

        let mut at_once = vec![0u8; m.len()];
        Unpacker::new(&col, 1)
            .unpack(&mut at_once, &packed)
            .unwrap();

        let mut pieces = vec![0u8; m.len()];
        let mut u = Unpacker::new(&col, 1);
        for chunk in packed.chunks(13) {
            u.unpack(&mut pieces, chunk).unwrap();
        }
        assert_eq!(at_once, pieces);
    }

    #[test]
    fn unpack_overrun_is_error() {
        let col = matrix_and_column().1;
        let mut dst = vec![0u8; 8 * 8 * 24];
        let mut u = Unpacker::new(&col, 1);
        let too_much = vec![0u8; col.size() + 1];
        assert!(matches!(
            u.unpack(&mut dst, &too_much),
            Err(TypeError::StreamOverrun { extra: 1 })
        ));
    }

    #[test]
    fn lookahead_cost_is_bounded_per_block_for_dual() {
        let (m, col) = matrix_and_column();
        let params = EngineParams {
            block_size: 48,
            lookahead_segments: 4,
            dense_threshold: 512,
        };
        let mut e = DualContextEngine::new(&col, 1, params);
        let mut counts = OpCounts::default();
        let mut nblocks = 0u64;
        while e.next_block(&m, &mut counts).unwrap().is_some() {
            nblocks += 1;
        }
        assert!(counts.lookahead_segments <= nblocks * 4);
    }

    #[test]
    fn op_counts_merge_sums_every_field() {
        let a = OpCounts {
            searched_segments: 1,
            lookahead_segments: 2,
            packed_segments: 3,
            packed_bytes: 4,
            direct_segments: 5,
            direct_bytes: 6,
            packed_blocks: 7,
            direct_blocks: 8,
        };
        let b = OpCounts {
            searched_segments: 10,
            lookahead_segments: 20,
            packed_segments: 30,
            packed_bytes: 40,
            direct_segments: 50,
            direct_bytes: 60,
            packed_blocks: 70,
            direct_blocks: 80,
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(
            merged,
            OpCounts {
                searched_segments: 11,
                lookahead_segments: 22,
                packed_segments: 33,
                packed_bytes: 44,
                direct_segments: 55,
                direct_bytes: 66,
                packed_blocks: 77,
                direct_blocks: 88,
            }
        );
        // Merging a default is the identity.
        let mut ident = a;
        ident.merge(&OpCounts::default());
        assert_eq!(ident, a);
    }

    #[test]
    fn op_counts_total_bytes_sums_both_paths() {
        let c = OpCounts {
            packed_bytes: 100,
            direct_bytes: 28,
            ..OpCounts::default()
        };
        assert_eq!(c.total_bytes(), 128);
        assert_eq!(OpCounts::default().total_bytes(), 0);
    }

    #[test]
    fn observer_sees_every_block_and_matches_counts() {
        use crate::observe::BlockLog;
        let (m, col) = matrix_and_column();
        let params = EngineParams {
            block_size: 48,
            lookahead_segments: 4,
            dense_threshold: 512,
        };
        for kind in [EngineKind::SingleContext, EngineKind::DualContext] {
            let mut e = kind.build(&col, 1, params.clone());
            let mut counts = OpCounts::default();
            let mut log = BlockLog::new();
            e.pack_all_observed(&m, &mut counts, &mut log).unwrap();

            assert_eq!(
                log.blocks.len() as u64,
                counts.packed_blocks + counts.direct_blocks
            );
            // Indices are contiguous from zero, and aggregates line up with
            // the engine's own OpCounts.
            for (i, b) in log.blocks.iter().enumerate() {
                assert_eq!(b.index, i as u64);
            }
            assert_eq!(log.total_bytes(), counts.total_bytes());
            assert_eq!(log.total_seek(), counts.searched_segments);
            assert_eq!(
                log.blocks.iter().map(|b| b.lookahead_segments).sum::<u64>(),
                counts.lookahead_segments
            );
            assert_eq!(log.sparse_blocks(), counts.packed_blocks);
            assert_eq!(log.dense_blocks(), counts.direct_blocks);
        }
    }

    #[test]
    fn single_context_observer_reports_growing_seeks() {
        use crate::observe::BlockLog;
        let (m, col) = matrix_and_column();
        let params = EngineParams {
            block_size: 48,
            lookahead_segments: 4,
            dense_threshold: 512,
        };
        let mut e = SingleContextEngine::new(&col, 1, params.clone());
        let mut counts = OpCounts::default();
        let mut log = BlockLog::new();
        e.pack_all_observed(&m, &mut counts, &mut log).unwrap();
        // Sparse stream: every block after the first seeks further back
        // (seek targets strictly increase with position).
        let targets: Vec<u64> = log.blocks.iter().map(|b| b.seek_target).collect();
        assert!(targets.windows(2).all(|w| w[0] < w[1]), "{targets:?}");
        assert!(log.blocks.last().unwrap().seek_segments >= log.blocks[0].seek_segments);

        // Dual-context on the same stream: zero seeks everywhere.
        let mut d = DualContextEngine::new(&col, 1, params);
        let mut dc = OpCounts::default();
        let mut dlog = BlockLog::new();
        d.pack_all_observed(&m, &mut dc, &mut dlog).unwrap();
        assert!(dlog.blocks.iter().all(|b| b.seek_segments == 0));
    }

    #[test]
    fn empty_message_yields_no_blocks() {
        let t = Datatype::contiguous(0, &Datatype::double()).unwrap();
        for kind in [EngineKind::SingleContext, EngineKind::DualContext] {
            let mut e = kind.build(&t, 3, EngineParams::default());
            let mut c = OpCounts::default();
            assert!(e.next_block(&[], &mut c).unwrap().is_none());
        }
    }
}
