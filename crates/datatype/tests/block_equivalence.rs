//! Pipeline-granularity invariance: the byte stream an engine produces
//! must be identical for every block size, look-ahead window and density
//! threshold — only the *costs* (op counts) may differ. This pins down the
//! separation between correctness and the performance model.

use ncd_datatype::{
    matrix_column_type, pack_all, Datatype, DualContextEngine, EngineParams, OpCounts, PackEngine,
    SingleContextEngine,
};

fn stream(engine: &mut dyn PackEngine, src: &[u8]) -> (Vec<u8>, OpCounts) {
    let mut counts = OpCounts::default();
    let bytes = engine.pack_all(src, &mut counts).expect("pack");
    (bytes, counts)
}

#[test]
fn all_block_sizes_produce_the_same_stream() {
    let col = matrix_column_type(32, 32, 3).expect("column");
    let src: Vec<u8> = (0..32 * 32 * 24).map(|i| (i % 251) as u8).collect();
    let reference = pack_all(&col, 32, &src).expect("reference");
    for block_size in [8usize, 24, 100, 1024, 65536, 1 << 24] {
        for lookahead in [1usize, 3, 15, 1000] {
            for dense_threshold in [1usize, 512, 1 << 20] {
                let params = EngineParams {
                    block_size,
                    lookahead_segments: lookahead,
                    dense_threshold,
                };
                let (a, ca) = stream(
                    &mut SingleContextEngine::new(&col, 32, params.clone()),
                    &src,
                );
                let (b, cb) = stream(&mut DualContextEngine::new(&col, 32, params), &src);
                assert_eq!(a, reference, "single bs={block_size} la={lookahead}");
                assert_eq!(b, reference, "dual bs={block_size} la={lookahead}");
                assert_eq!(ca.total_bytes(), cb.total_bytes(), "bytes moved must agree");
                assert_eq!(cb.searched_segments, 0, "dual never searches");
            }
        }
    }
}

#[test]
fn dense_threshold_controls_direct_vs_packed_but_not_bytes() {
    // A type whose segments are exactly 256 bytes: the threshold decides
    // the path, never the content.
    let seg = Datatype::contiguous(32, &Datatype::double()).expect("256B");
    let t = Datatype::hvector(16, 1, 512, &seg).expect("strided");
    let src = vec![9u8; 16 * 512];
    let reference = pack_all(&t, 1, &src).expect("reference");
    let run = |threshold: usize| {
        let params = EngineParams {
            block_size: 4096,
            lookahead_segments: 15,
            dense_threshold: threshold,
        };
        stream(&mut DualContextEngine::new(&t, 1, params), &src)
    };
    let (low, clow) = run(1); // everything dense -> direct
    let (high, chigh) = run(1 << 20); // everything sparse -> packed
    assert_eq!(low, reference);
    assert_eq!(high, reference);
    assert_eq!(clow.packed_bytes, 0);
    assert_eq!(clow.direct_bytes as usize, reference.len());
    assert_eq!(chigh.direct_bytes, 0);
    assert_eq!(chigh.packed_bytes as usize, reference.len());
}

#[test]
fn search_cost_is_monotone_in_block_count() {
    // Smaller pipeline blocks mean more look-aheads, hence more re-search
    // for the single-context engine (monotone in the number of blocks).
    let col = matrix_column_type(64, 64, 3).expect("column");
    let src = vec![1u8; 64 * 64 * 24];
    let search_for = |block_size: usize| {
        let params = EngineParams {
            block_size,
            lookahead_segments: 8,
            dense_threshold: 512,
        };
        let (_, c) = stream(&mut SingleContextEngine::new(&col, 64, params), &src);
        c.searched_segments
    };
    let coarse = search_for(32 * 1024);
    let medium = search_for(4 * 1024);
    let fine = search_for(512);
    assert!(coarse < medium, "{coarse} < {medium}");
    assert!(medium < fine, "{medium} < {fine}");
}

#[test]
fn lookahead_window_does_not_change_the_stream_boundary_behaviour() {
    // Mixed dense/sparse type: 4 KB runs followed by 8-byte crumbs.
    let run4k = Datatype::contiguous(512, &Datatype::double()).expect("4KB");
    let crumbs = Datatype::vector(64, 1, 2, &Datatype::double()).expect("crumbs");
    let t = Datatype::structure(&[
        ncd_datatype::StructField {
            disp: 0,
            count: 2,
            dtype: run4k,
        },
        ncd_datatype::StructField {
            disp: 8192,
            count: 4,
            dtype: crumbs,
        },
    ])
    .expect("mixed");
    let span = 8192 + 4 * 64 * 16 + 64;
    let src: Vec<u8> = (0..span).map(|i| (i % 249) as u8).collect();
    let reference = pack_all(&t, 1, &src).expect("reference");
    for lookahead in [1usize, 2, 15, 63, 500] {
        let params = EngineParams {
            block_size: 1500,
            lookahead_segments: lookahead,
            dense_threshold: 256,
        };
        let (a, _) = stream(&mut SingleContextEngine::new(&t, 1, params.clone()), &src);
        let (b, _) = stream(&mut DualContextEngine::new(&t, 1, params), &src);
        assert_eq!(a, reference, "single la={lookahead}");
        assert_eq!(b, reference, "dual la={lookahead}");
    }
}
