//! Property-based tests of the datatype engine invariants:
//!
//! * both pack engines produce exactly the naive segment-walk byte stream,
//!   for arbitrary (recursively generated) datatypes, counts, and pipeline
//!   granularities;
//! * unpack is the left inverse of pack on the bytes the type covers;
//! * the single-context engine's search count is zero exactly when no
//!   sparse block ever follows a look-ahead;
//! * cursor seek/advance agree with plain traversal.

use ncd_datatype::{
    pack_all, unpack_all, BlockLog, Datatype, DualContextEngine, EngineParams, OpCounts,
    PackEngine, SingleContextEngine, TypeCursor,
};
use proptest::prelude::*;

/// A recursive datatype generator: primitives at the leaves; vectors,
/// contiguous, indexed and resized combinators above, with bounds that
/// keep the flattened size small enough for fast shrinking.
fn arb_datatype() -> impl Strategy<Value = Datatype> {
    let leaf = prop_oneof![
        Just(Datatype::double()),
        Just(Datatype::float()),
        Just(Datatype::int32()),
        Just(Datatype::byte()),
    ];
    leaf.prop_recursive(3, 64, 4, |inner| {
        prop_oneof![
            (1usize..5, inner.clone())
                .prop_map(|(n, t)| Datatype::contiguous(n, &t).expect("contiguous")),
            (1usize..4, 1usize..3, 0i64..6, inner.clone()).prop_map(|(c, b, extra, t)| {
                // stride >= blocklen keeps blocks disjoint (MPI receive-safe).
                Datatype::vector(c, b, b as i64 + extra, &t).expect("vector")
            }),
            (
                proptest::collection::vec((0i64..12, 1usize..3), 1..4),
                inner.clone()
            )
                .prop_map(|(mut blocks, t)| {
                    // Disjoint ascending blocks.
                    blocks.sort();
                    let mut disp = 0i64;
                    for (d, len) in blocks.iter_mut() {
                        *d += disp;
                        disp = *d + *len as i64;
                    }
                    Datatype::indexed(&blocks, &t).expect("indexed")
                }),
            (0i64..4, inner.clone()).prop_map(|(pad, t)| {
                let extent = t.extent().max(0) + pad;
                Datatype::resized(t.lb(), extent, &t).expect("resized")
            }),
        ]
    })
}

/// Reference pack: walk the flattened segments directly.
fn naive_pack(dt: &Datatype, count: usize, src: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut c = TypeCursor::new(dt, count);
    while let Some(r) = c.next_range(usize::MAX) {
        out.extend_from_slice(&src[r.offset as usize..r.offset as usize + r.len]);
    }
    out
}

/// Buffer big enough for `count` replicas of `dt` with arbitrary content.
fn buffer_for(dt: &Datatype, count: usize) -> Vec<u8> {
    let span = (dt.extent().unsigned_abs() as usize) * count
        + dt.segments()
            .iter()
            .map(|s| s.end().max(0) as usize)
            .max()
            .unwrap_or(0)
        + 64;
    (0..span).map(|i| (i % 251) as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engines_match_naive_pack(
        dt in arb_datatype(),
        count in 1usize..4,
        block_size in 8usize..512,
        lookahead in 1usize..20,
    ) {
        let src = buffer_for(&dt, count);
        let expected = naive_pack(&dt, count, &src);
        let params = EngineParams {
            block_size,
            lookahead_segments: lookahead,
            dense_threshold: 64,
        };
        let mut single = SingleContextEngine::new(&dt, count, params.clone());
        let mut c1 = OpCounts::default();
        let got1 = single.pack_all(&src, &mut c1).expect("single pack");
        prop_assert_eq!(&got1, &expected);
        prop_assert_eq!(c1.total_bytes() as usize, expected.len());

        let mut dual = DualContextEngine::new(&dt, count, params);
        let mut c2 = OpCounts::default();
        let got2 = dual.pack_all(&src, &mut c2).expect("dual pack");
        prop_assert_eq!(&got2, &expected);
        prop_assert_eq!(c2.searched_segments, 0);
    }

    #[test]
    fn observer_bytes_agree_with_op_counts(
        dt in arb_datatype(),
        count in 1usize..4,
        block_size in 8usize..512,
        lookahead in 1usize..20,
    ) {
        // The observer's per-block report and the engine's OpCounts are two
        // independent tallies of the same stream; they must agree byte for
        // byte (and block for block) on arbitrary datatypes and pipeline
        // granularities, for both engines.
        let src = buffer_for(&dt, count);
        let params = EngineParams {
            block_size,
            lookahead_segments: lookahead,
            dense_threshold: 64,
        };
        let mut single = SingleContextEngine::new(&dt, count, params.clone());
        let mut c1 = OpCounts::default();
        let mut log1 = BlockLog::default();
        let out1 = single.pack_all_observed(&src, &mut c1, &mut log1).expect("single pack");
        prop_assert_eq!(log1.total_bytes(), c1.total_bytes());
        prop_assert_eq!(log1.total_bytes() as usize, out1.len());
        prop_assert_eq!(log1.blocks.len() as u64, c1.packed_blocks + c1.direct_blocks);
        prop_assert_eq!(log1.total_seek(), c1.searched_segments);

        let mut dual = DualContextEngine::new(&dt, count, params);
        let mut c2 = OpCounts::default();
        let mut log2 = BlockLog::default();
        let out2 = dual.pack_all_observed(&src, &mut c2, &mut log2).expect("dual pack");
        prop_assert_eq!(log2.total_bytes(), c2.total_bytes());
        prop_assert_eq!(log2.total_bytes() as usize, out2.len());
        prop_assert_eq!(log2.blocks.len() as u64, c2.packed_blocks + c2.direct_blocks);
        prop_assert_eq!(log2.total_seek(), 0u64);
    }

    #[test]
    fn pack_all_matches_naive(dt in arb_datatype(), count in 1usize..4) {
        let src = buffer_for(&dt, count);
        prop_assert_eq!(
            pack_all(&dt, count, &src).expect("pack_all"),
            naive_pack(&dt, count, &src)
        );
    }

    #[test]
    fn unpack_inverts_pack_on_covered_bytes(dt in arb_datatype(), count in 1usize..4) {
        let src = buffer_for(&dt, count);
        let packed = pack_all(&dt, count, &src).expect("pack");
        let mut dst = vec![0u8; src.len()];
        unpack_all(&dt, count, &mut dst, &packed).expect("unpack");
        // Every byte covered by the type map matches the source.
        let mut c = TypeCursor::new(&dt, count);
        while let Some(r) = c.next_range(usize::MAX) {
            let (s, e) = (r.offset as usize, r.offset as usize + r.len);
            prop_assert_eq!(&dst[s..e], &src[s..e]);
        }
    }

    #[test]
    fn cursor_seek_matches_traversal(
        dt in arb_datatype(),
        count in 1usize..4,
        frac in 0.0f64..1.0,
    ) {
        let total = dt.size() * count;
        let target = (total as f64 * frac) as usize;
        // Walk via next_range to the target...
        let mut walk = TypeCursor::new(&dt, count);
        let mut consumed = 0usize;
        while consumed < target {
            let r = walk.next_range(target - consumed).expect("enough bytes");
            consumed += r.len;
        }
        // ...and compare against a search from the start.
        let mut seek = TypeCursor::new(&dt, count);
        seek.search_from_start(target);
        prop_assert_eq!(seek.packed_offset(), walk.packed_offset());
        // Both cursors must yield the same next range.
        let a = seek.next_range(17);
        let b = walk.next_range(17);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn size_is_segment_sum_and_extent_spans_segments(dt in arb_datatype()) {
        let seg_sum: usize = dt.segments().iter().map(|s| s.len).sum();
        prop_assert_eq!(dt.size(), seg_sum);
        if dt.num_segments() > 0 && dt.constructor_name() != "resized" {
            let lo = dt.segments().iter().map(|s| s.offset).min().expect("nonempty");
            let hi = dt.segments().iter().map(|s| s.end()).max().expect("nonempty");
            prop_assert_eq!(dt.extent(), hi - lo);
        }
    }

    #[test]
    fn segments_are_coalesced(dt in arb_datatype()) {
        // No two consecutive segments are adjacent in memory (the sink
        // would have merged them).
        for w in dt.segments().windows(2) {
            prop_assert_ne!(w[0].end(), w[1].offset);
        }
    }
}
