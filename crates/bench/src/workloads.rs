//! Shared diagnosis workloads: the exact closures a bench measures, a
//! gated test replays, and the CI what-if smoke re-verifies must be one
//! definition, or "the profiler reproduced the finding" silently stops
//! meaning anything. Each workload here is deterministic given the
//! cluster/MPI configuration, so a [`ncd_core::causal_profile`] replay of
//! it is bit-reproducible on the event backend.

use ncd_core::Comm;

/// Measured iterations of the AMR-skew diagnosis workload.
pub const AMR_DIAG_STEPS: usize = 4;

/// The refinement-hotspot rank: contributes the outlier volume and the
/// extra compute, entering every collective late.
pub const AMR_DIAG_OUTLIER: usize = 0;

/// Per-rank allgatherv counts for the AMR-skew diagnosis workload: 64 B
/// everywhere, 64 KiB on the outlier — the paper's skewed-volume shape,
/// extreme enough that the baseline selector picks the ring over it.
pub fn amr_diag_counts(n: usize) -> Vec<usize> {
    let mut counts = vec![64usize; n];
    counts[AMR_DIAG_OUTLIER] = 64 * 1024;
    counts
}

/// The measured loop of the AMR-skew diagnosis phase: `AMR_DIAG_STEPS`
/// rounds of hotspot compute on the outlier rank followed by the skewed
/// allgatherv. Callers synchronize and reset clocks first (see
/// [`amr_diag_workload`]); the bench's instrumented prologue also drops
/// its warmup observations before calling this.
pub fn amr_diag_loop(comm: &mut Comm) {
    let me = comm.rank();
    let counts = amr_diag_counts(comm.size());
    let total: usize = counts.iter().sum();
    for _ in 0..AMR_DIAG_STEPS {
        if me == AMR_DIAG_OUTLIER {
            // The refinement hotspot: more cells, more compute,
            // entering the collective late every step.
            comm.rank_mut().compute_flops(20_000_000);
        }
        let send = vec![me as u8; counts[me]];
        let mut recv = vec![0u8; total];
        comm.allgatherv(&send, &counts, &mut recv);
    }
}

/// The full AMR-skew diagnosis workload as a what-if replay target:
/// barrier, clock reset, then [`amr_diag_loop`] — so the replayed
/// makespan covers exactly the window the diagnosis classified.
pub fn amr_diag_workload(comm: &mut Comm) {
    comm.barrier();
    comm.rank_mut().reset_clock();
    amr_diag_loop(comm);
}
