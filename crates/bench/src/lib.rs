//! Shared harness utilities for the figure-reproduction benchmarks.
//!
//! Every evaluation figure of the paper (Figures 12–17) has a bench target
//! in `benches/` that prints the same series the paper plots and writes a
//! CSV next to it. The helpers here standardize how a timed phase runs:
//! synchronize (barrier), reset the simulated clocks, run the operation
//! `reps` times, and report the **maximum per-rank simulated time divided
//! by reps** — the way MPI benchmarks report collective latency.

use ncd_core::{Comm, MpiConfig};
use ncd_simnet::{Cluster, ClusterConfig, MetricsRegistry, SimTime, Stats};

pub mod baseline;

pub use baseline::{baseline_mode, check_series, tolerance_pct, BaselineMode};

/// Whether the bench was asked to run reduced problem sizes (`--smoke` on
/// the command line or `NCD_SMOKE=1` in the environment) — used by CI so
/// the full figure sweep doesn't run on every push. Baselines written in
/// smoke mode are stored separately (see [`baseline::baseline_path`]).
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke") || std::env::var("NCD_SMOKE").as_deref() == Ok("1")
}

/// Apply the requested baseline handling to a bench's gated series.
///
/// * `--baseline write`: snapshot `series` under `benches/baselines/`.
/// * `--baseline check`: compare against the committed snapshot and
///   **exit nonzero** with a diff table when a point regressed beyond
///   [`tolerance_pct`] (or the snapshot is missing/shape-mismatched).
/// * otherwise: no-op.
///
/// Gate only lower-is-better series (latencies); derived higher-is-better
/// series like improvement % must stay out.
pub fn baseline_gate(name: &str, series: &[Series]) {
    let smoke = smoke_mode();
    let path = baseline::baseline_path(name, smoke);
    match baseline_mode() {
        BaselineMode::Off => {}
        BaselineMode::Write => {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).expect("create baseline dir");
            }
            std::fs::write(&path, baseline::snapshot_json(name, smoke, series))
                .expect("write baseline snapshot");
            println!("baseline written: {}", path.display());
        }
        BaselineMode::Check => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!(
                    "baseline check FAILED for {name}: cannot read {} ({e}); \
                     run with --baseline write and commit the snapshot",
                    path.display()
                );
                std::process::exit(1);
            });
            let base = baseline::parse_snapshot(&text);
            let tol = tolerance_pct();
            let regs = check_series(&base, series, tol);
            if regs.is_empty() {
                println!(
                    "baseline check passed: {name} ({} series, tolerance {tol}%)",
                    series.len()
                );
            } else {
                eprint!("{}", baseline::render_regressions(name, &regs, tol));
                std::process::exit(1);
            }
        }
    }
}

/// Run `body` on a cluster and return the per-iteration completion time
/// (max over ranks), plus each rank's stats for breakdown reporting.
///
/// `body` receives the communicator and the iteration index; one warmup
/// iteration (index `usize::MAX`) runs before the clocks reset.
pub fn time_phase<F>(
    cluster_cfg: ClusterConfig,
    mpi_cfg: MpiConfig,
    reps: usize,
    body: F,
) -> (SimTime, Vec<Stats>)
where
    F: Fn(&mut Comm, usize) + Send + Sync,
{
    assert!(reps > 0);
    let out = Cluster::new(cluster_cfg).run(|rank| {
        let mut comm = Comm::new(rank, mpi_cfg.clone());
        body(&mut comm, usize::MAX); // warmup
        comm.barrier();
        comm.rank_mut().reset_clock();
        let _ = comm.rank_mut().take_stats();
        for it in 0..reps {
            body(&mut comm, it);
        }
        let t = comm.rank_ref().now();
        let stats = comm.rank_ref().stats().clone();
        (t, stats)
    });
    let tmax = out.iter().map(|(t, _)| *t).max().expect("nonempty cluster");
    let stats = out.into_iter().map(|(_, s)| s).collect();
    (SimTime::from_ns(tmax.as_ns() / reps as u64), stats)
}

/// [`time_phase`] with the metrics registry enabled on every rank: also
/// returns the cluster-wide merge of the per-rank registries collected
/// over the measured (post-warmup) iterations.
pub fn time_phase_metrics<F>(
    cluster_cfg: ClusterConfig,
    mpi_cfg: MpiConfig,
    reps: usize,
    body: F,
) -> (SimTime, Vec<Stats>, MetricsRegistry)
where
    F: Fn(&mut Comm, usize) + Send + Sync,
{
    assert!(reps > 0);
    let out = Cluster::new(cluster_cfg).run(|rank| {
        rank.enable_metrics();
        let mut comm = Comm::new(rank, mpi_cfg.clone());
        body(&mut comm, usize::MAX); // warmup
        comm.barrier();
        comm.rank_mut().reset_clock();
        let _ = comm.rank_mut().take_stats();
        let _ = comm.rank_mut().take_metrics(); // drop warmup metrics
        for it in 0..reps {
            body(&mut comm, it);
        }
        let t = comm.rank_ref().now();
        let stats = comm.rank_ref().stats().clone();
        let metrics = comm.rank_mut().take_metrics();
        (t, stats, metrics)
    });
    let tmax = out
        .iter()
        .map(|(t, _, _)| *t)
        .max()
        .expect("nonempty cluster");
    let mut merged = MetricsRegistry::enabled();
    let mut stats = Vec::with_capacity(out.len());
    for (_, s, m) in out {
        merged.merge(&m);
        stats.push(s);
    }
    (SimTime::from_ns(tmax.as_ns() / reps as u64), stats, merged)
}

/// Aggregate per-rank stats into one cluster-wide breakdown.
pub fn aggregate(stats: &[Stats]) -> Stats {
    let mut total = Stats::new();
    for s in stats {
        total.merge(s);
    }
    total
}

/// Percentage improvement of `new` over `old` (positive = new is faster).
pub fn improvement_pct(old: SimTime, new: SimTime) -> f64 {
    if old.as_ns() == 0 {
        return 0.0;
    }
    100.0 * (old.as_ns() as f64 - new.as_ns() as f64) / old.as_ns() as f64
}

/// A labelled series of (x, y) points for table/CSV output.
pub struct Series {
    pub label: String,
    pub points: Vec<(String, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: impl Into<String>, y: f64) {
        self.points.push((x.into(), y));
    }
}

/// Print an aligned table of several series sharing the x axis, and write
/// the same data as CSV under `target/figures/<name>.csv`. When a JSON
/// report is requested (see [`json_report_requested`]) the series are also
/// written to `target/figures/<name>.json`; benches that collect metrics
/// use [`report_with_metrics`] to include the registry snapshot.
pub fn report(name: &str, x_label: &str, y_label: &str, series: &[Series]) {
    report_impl(name, x_label, y_label, series, None)
}

fn report_impl(
    name: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    metrics: Option<&MetricsRegistry>,
) {
    println!("\n=== {name} ({y_label}) ===");
    print!("{:>14}", x_label);
    for s in series {
        print!("{:>22}", s.label);
    }
    println!();
    let npoints = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..npoints {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|(x, _)| x.clone()))
            .unwrap_or_default();
        print!("{x:>14}");
        for s in series {
            match s.points.get(i) {
                Some((_, y)) => print!("{y:>22.3}"),
                None => print!("{:>22}", "-"),
            }
        }
        println!();
    }

    // CSV alongside (best effort; benches may run in read-only setups).
    let dir = std::path::Path::new("target").join("figures");
    if std::fs::create_dir_all(&dir).is_ok() {
        let mut csv = String::new();
        csv.push_str(x_label);
        for s in series {
            csv.push(',');
            csv.push_str(&s.label);
        }
        csv.push('\n');
        for i in 0..npoints {
            let x = series
                .iter()
                .find_map(|s| s.points.get(i).map(|(x, _)| x.clone()))
                .unwrap_or_default();
            csv.push_str(&x);
            for s in series {
                csv.push(',');
                if let Some((_, y)) = s.points.get(i) {
                    csv.push_str(&format!("{y}"));
                }
            }
            csv.push('\n');
        }
        let _ = std::fs::write(dir.join(format!("{name}.csv")), csv);
    }

    if json_report_requested() {
        write_json_report(name, x_label, y_label, series, metrics);
    }
}

/// Whether a machine-readable JSON report was requested, via
/// `--report json` / `--report=json` on the command line or
/// `NCD_REPORT=json` in the environment.
pub fn json_report_requested() -> bool {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--report=json" {
            return true;
        }
        if a == "--report" && args.next().as_deref() == Some("json") {
            return true;
        }
    }
    std::env::var("NCD_REPORT").as_deref() == Ok("json")
}

/// [`report`], plus — when `--report json` (or `NCD_REPORT=json`) is in
/// effect — a machine-readable run report written to
/// `target/figures/<name>.json`: the same series as the CSV, and a
/// snapshot of the cluster-merged metrics registry when one was collected.
pub fn report_with_metrics(
    name: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    metrics: Option<&MetricsRegistry>,
) {
    report_impl(name, x_label, y_label, series, metrics)
}

fn write_json_report(
    name: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    metrics: Option<&MetricsRegistry>,
) {
    let esc = ncd_simnet::export::json_escape;
    let mut out = format!(
        "{{\"name\":\"{}\",\"x_label\":\"{}\",\"y_label\":\"{}\",\"series\":[",
        esc(name),
        esc(x_label),
        esc(y_label)
    );
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"label\":\"{}\",\"points\":[", esc(&s.label)));
        for (j, (x, y)) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let y_json = if y.is_finite() {
                y.to_string()
            } else {
                "null".to_string()
            };
            out.push_str(&format!("[\"{}\",{y_json}]", esc(x)));
        }
        out.push_str("]}");
    }
    out.push(']');
    if let Some(m) = metrics {
        out.push_str(",\"metrics\":");
        out.push_str(&ncd_simnet::metrics_json(m));
    }
    out.push('}');
    let dir = std::path::Path::new("target").join("figures");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if std::fs::write(&path, out).is_ok() {
            println!("json report: {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncd_simnet::Tag;

    #[test]
    fn time_phase_measures_per_iteration() {
        let ping = |comm: &mut Comm, _it: usize| {
            if comm.rank() == 0 {
                comm.rank_mut().send_bytes(1, Tag(0), vec![0; 1200]);
            } else {
                let _ = comm.rank_mut().recv_bytes(Some(0), Tag(0));
            }
        };
        let (t1, _) = time_phase(ClusterConfig::uniform(2), MpiConfig::optimized(), 1, ping);
        let (t4, _) = time_phase(ClusterConfig::uniform(2), MpiConfig::optimized(), 4, ping);
        // Per-iteration time should be roughly rep-count independent.
        let ratio = t1.as_ns() as f64 / t4.as_ns() as f64;
        assert!((0.3..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn improvement_pct_signs() {
        assert_eq!(improvement_pct(SimTime(100), SimTime(50)), 50.0);
        assert_eq!(improvement_pct(SimTime(100), SimTime(100)), 0.0);
        assert!(improvement_pct(SimTime(50), SimTime(100)) < 0.0);
        assert_eq!(improvement_pct(SimTime(0), SimTime(10)), 0.0);
    }

    #[test]
    fn series_and_report_do_not_panic() {
        let mut s = Series::new("test");
        s.push("1", 2.0);
        s.push("2", 4.0);
        report("unit_test_fig", "x", "y", &[s]);
    }

    #[test]
    fn time_phase_metrics_collects_cluster_registry() {
        let (_, stats, metrics) = time_phase_metrics(
            ClusterConfig::uniform(2),
            MpiConfig::optimized(),
            2,
            |comm, _| {
                let counts = vec![16usize; 2];
                let send = vec![1u8; 16];
                let mut recv = vec![0u8; 32];
                comm.allgatherv(&send, &counts, &mut recv);
            },
        );
        assert_eq!(stats.len(), 2);
        // 2 ranks x 2 measured reps (warmup metrics dropped).
        let h = metrics
            .histogram("allgatherv", "bytes", "adaptive")
            .expect("adaptive histogram");
        assert_eq!(h.count(), 4);
        // The flat-time counters mirror Stats exactly, cluster-wide.
        let total: u64 = aggregate(&stats).total().as_ns();
        let counted: u64 = ncd_simnet::CostKind::ALL
            .iter()
            .map(|k| metrics.counter("time", k.label(), ""))
            .sum();
        assert_eq!(counted, total);
    }

    #[test]
    fn json_report_writes_valid_file_when_requested() {
        let mut s = Series::new("baseline");
        s.push("64", 1.5);
        std::env::set_var("NCD_REPORT", "json");
        let mut reg = MetricsRegistry::enabled();
        reg.counter_add("a", "b", "c", 7);
        report_with_metrics("unit_test_json_fig", "n", "us", &[s], Some(&reg));
        std::env::remove_var("NCD_REPORT");
        let path = std::path::Path::new("target/figures/unit_test_json_fig.json");
        let json = std::fs::read_to_string(path).expect("json report written");
        assert!(json.starts_with("{\"name\":\"unit_test_json_fig\""));
        assert!(json.contains("\"points\":[[\"64\",1.5]]"));
        assert!(json.contains("\"key\":\"a/b/c\",\"value\":7"));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn aggregate_merges_all_ranks() {
        let (_, stats) = time_phase(
            ClusterConfig::uniform(3),
            MpiConfig::optimized(),
            1,
            |comm, _| comm.barrier(),
        );
        let total = aggregate(&stats);
        assert!(total.msgs_sent >= 3);
    }
}
