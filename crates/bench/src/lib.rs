//! Shared harness utilities for the figure-reproduction benchmarks.
//!
//! Every evaluation figure of the paper (Figures 12–17) has a bench target
//! in `benches/` that prints the same series the paper plots and writes a
//! CSV next to it. The helpers here standardize how a timed phase runs:
//! synchronize (barrier), reset the simulated clocks, run the operation
//! `reps` times, and report the **maximum per-rank simulated time divided
//! by reps** — the way MPI benchmarks report collective latency.

use ncd_core::{Comm, DriftConfig, MpiConfig};
use ncd_simnet::{
    merge_comm_maps, merge_histories, Cluster, ClusterCommMap, ClusterConfig, Diagnosis, History,
    MetricsRegistry, RunManifest, SimTime, Stats, TraceEvent, SCHEMA_VERSION,
};

pub mod baseline;
pub mod workloads;

pub use baseline::{
    baseline_mode, check_series, tolerance_pct, BaselineMode, EXIT_MISSING_BASELINE,
};
pub use workloads::{
    amr_diag_counts, amr_diag_loop, amr_diag_workload, AMR_DIAG_OUTLIER, AMR_DIAG_STEPS,
};

/// Whether the bench was asked to run reduced problem sizes (`--smoke` on
/// the command line or `NCD_SMOKE=1` in the environment) — used by CI so
/// the full figure sweep doesn't run on every push. Baselines written in
/// smoke mode are stored separately (see [`baseline::baseline_path`]).
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke") || std::env::var("NCD_SMOKE").as_deref() == Ok("1")
}

/// The harness options every bench target accepts, parsed once at the top
/// of `main`. Centralizing the parse means `--smoke`, `--report json`,
/// `--baseline write|check` and `--tolerance <pct>` behave identically
/// across every `fig*`/`ext_*`/`crit_*` bench instead of each target
/// re-reading the globals it happens to care about.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchCli {
    /// Reduced problem sizes (`--smoke` / `NCD_SMOKE=1`).
    pub smoke: bool,
    /// Machine-readable report requested (`--report json` / `NCD_REPORT`).
    pub report_json: bool,
    /// Baseline handling (`--baseline write|check` / `NCD_BASELINE`).
    pub baseline: BaselineMode,
    /// Regression tolerance in percent (`--tolerance` / `NCD_BASELINE_TOL`).
    pub tolerance_pct: f64,
    /// Persist this run's byte-stable exports to the observatory ledger
    /// (`--ledger` / `NCD_LEDGER=1`).
    pub ledger: bool,
    /// Compare against a prior ledgered run (`--compare <run-id|latest|path>`
    /// / `NCD_COMPARE`). Implies `--ledger` for the current run.
    pub compare: Option<String>,
    /// Run the counterfactual what-if profiler after the diagnosis phase
    /// (`--whatif` / `NCD_WHATIF=1`): plan interventions from the
    /// findings, replay each deterministically, report verified gains.
    pub whatif: bool,
    /// The what-if phase's byte-stable JSON, stashed by [`whatif_phase`]
    /// so [`BenchCli::observatory`] can ledger it as the `whatif.json`
    /// artifact without changing its signature at every bench call site.
    /// `None` leaves ledgered runs byte-identical to a no-whatif run.
    pub whatif_artifact: Option<String>,
}

impl BenchCli {
    /// Parse from the process arguments and environment.
    pub fn parse() -> BenchCli {
        let args: Vec<String> = std::env::args().collect();
        let mut cli = BenchCli::from_args(&args);
        cli.smoke = smoke_mode();
        cli.report_json = json_report_requested();
        cli.baseline = baseline_mode();
        cli.tolerance_pct = tolerance_pct();
        if !cli.ledger {
            cli.ledger = std::env::var("NCD_LEDGER").as_deref() == Ok("1");
        }
        if cli.compare.is_none() {
            cli.compare = std::env::var("NCD_COMPARE").ok().filter(|s| !s.is_empty());
        }
        if !cli.whatif {
            cli.whatif = std::env::var("NCD_WHATIF").as_deref() == Ok("1");
        }
        cli
    }

    /// Pure parse over an explicit argument list (no environment), for
    /// tests. Flags mirror [`parse`](Self::parse): `--smoke`,
    /// `--report json` / `--report=json`, `--baseline write|check` /
    /// `--baseline=<mode>`, `--tolerance <pct>` / `--tolerance=<pct>`,
    /// `--ledger`, `--compare <spec>` / `--compare=<spec>`, `--whatif`.
    pub fn from_args(args: &[String]) -> BenchCli {
        let mut report_json = false;
        let mut tolerance = 10.0;
        let mut ledger = false;
        let mut compare: Option<String> = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--report=json" => report_json = true,
                "--report" => {
                    if it.next().map(String::as_str) == Some("json") {
                        report_json = true;
                    }
                }
                "--tolerance" => {
                    if let Some(v) = it.next() {
                        tolerance = v
                            .parse()
                            .unwrap_or_else(|_| panic!("--tolerance must be a number, got {v:?}"));
                    }
                }
                "--ledger" => ledger = true,
                "--compare" => {
                    compare = Some(
                        it.next()
                            .unwrap_or_else(|| {
                                panic!("--compare needs a run id, 'latest', or a path")
                            })
                            .clone(),
                    );
                }
                other => {
                    if let Some(v) = other.strip_prefix("--tolerance=") {
                        tolerance = v
                            .parse()
                            .unwrap_or_else(|_| panic!("--tolerance must be a number, got {v:?}"));
                    } else if let Some(v) = other.strip_prefix("--compare=") {
                        compare = Some(v.to_string());
                    }
                }
            }
        }
        BenchCli {
            smoke: args.iter().any(|a| a == "--smoke"),
            report_json,
            baseline: baseline::mode_from(args, None),
            tolerance_pct: tolerance,
            ledger,
            compare,
            whatif: args.iter().any(|a| a == "--whatif"),
            whatif_artifact: None,
        }
    }

    /// Whether the bench should run its (more expensive, fully traced)
    /// observatory pass at all: only when the run is being ledgered or
    /// compared.
    pub fn wants_observatory(&self) -> bool {
        self.ledger || self.compare.is_some()
    }

    /// Ledger the current run's artifacts and, when `--compare` was
    /// given, print and persist the differential against the base run.
    ///
    /// The comparison base is resolved *before* the current run is
    /// written, so `--compare latest` means "the previous ledgered run",
    /// not the one this call creates. Returns the computed
    /// [`RunDiff`](ncd_core::RunDiff)
    /// when a comparison ran, `None` when only ledgering (or neither flag
    /// was given). Exits nonzero when the compare spec cannot be
    /// resolved — a CI observatory step must not silently skip its
    /// reference run.
    #[allow(clippy::too_many_arguments)]
    pub fn observatory(
        &self,
        name: &str,
        knobs: &[(String, String)],
        series: &[Series],
        metrics: Option<&MetricsRegistry>,
        comm_map: Option<&ClusterCommMap>,
        history: Option<&History>,
        traces: Option<&[Vec<TraceEvent>]>,
    ) -> Option<ncd_core::RunDiff> {
        if !self.wants_observatory() {
            return None;
        }
        let root = ncd_simnet::ledger_root();
        let base_dir = self
            .compare
            .as_ref()
            .map(|spec| resolve_compare_dir(&root, name, spec));
        let manifest = report_to_ledger(
            name,
            self.smoke,
            knobs,
            series,
            metrics,
            comm_map,
            history,
            traces,
            self.whatif_artifact.as_deref(),
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot write the run ledger for {name}: {e}");
            std::process::exit(1);
        });
        let base_dir = match base_dir? {
            Ok(dir) => dir,
            Err(e) => {
                eprintln!(
                    "--compare for {name}: {e}\n\
                     ledger a reference run first: cargo bench ... -- {}--ledger",
                    if self.smoke { "--smoke " } else { "" }
                );
                std::process::exit(1);
            }
        };
        let load = |dir: &std::path::Path| -> ncd_core::RunRecord {
            let run = ncd_simnet::read_run(dir).unwrap_or_else(|e| {
                eprintln!("cannot read ledgered run {}: {e}", dir.display());
                std::process::exit(1);
            });
            ncd_core::RunRecord::from_ledger(&run).unwrap_or_else(|e| {
                eprintln!("malformed run artifacts in {}: {e}", dir.display());
                std::process::exit(1);
            })
        };
        let base = load(&base_dir);
        let cur = load(&root.join(name).join(&manifest.run_id));
        let diff = ncd_core::compare(&base, &cur);
        let table = ncd_core::render_compare(&diff, 10);
        print!("\n{table}");
        let bench_dir = root.join(name);
        if ncd_core::write_diff_json(bench_dir.join("diff.json"), &diff).is_ok()
            && std::fs::write(bench_dir.join("diff.txt"), &table).is_ok()
        {
            println!(
                "differential written: {} (and diff.txt)",
                bench_dir.join("diff.json").display()
            );
        }
        Some(diff)
    }

    /// [`baseline_gate`] driven by this parse instead of re-reading the
    /// process globals.
    pub fn gate(&self, name: &str, series: &[Series]) {
        gate_with(name, series, self.smoke, self.baseline, self.tolerance_pct)
    }
}

/// Apply the requested baseline handling to a bench's gated series.
///
/// * `--baseline write`: snapshot `series` under `benches/baselines/`.
/// * `--baseline check`: compare against the committed snapshot and
///   **exit nonzero** with a diff table when a point regressed beyond
///   [`tolerance_pct`] (or the snapshot is missing/shape-mismatched).
/// * otherwise: no-op.
///
/// Gate only lower-is-better series (latencies); derived higher-is-better
/// series like improvement % must stay out.
pub fn baseline_gate(name: &str, series: &[Series]) {
    gate_with(name, series, smoke_mode(), baseline_mode(), tolerance_pct())
}

fn gate_with(name: &str, series: &[Series], smoke: bool, mode: BaselineMode, tol: f64) {
    let path = baseline::baseline_path(name, smoke);
    match mode {
        BaselineMode::Off => {}
        BaselineMode::Write => {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).expect("create baseline dir");
            }
            std::fs::write(&path, baseline::snapshot_json(name, smoke, series))
                .expect("write baseline snapshot");
            println!("baseline written: {}", path.display());
        }
        BaselineMode::Check => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprint!(
                    "{}",
                    baseline::missing_snapshot_message(
                        name,
                        &path,
                        baseline::bench_target().as_deref(),
                        smoke,
                        &e.to_string(),
                    )
                );
                std::process::exit(EXIT_MISSING_BASELINE);
            });
            let base = baseline::parse_snapshot(&text);
            let regs = check_series(&base, series, tol);
            if regs.is_empty() {
                println!(
                    "baseline check passed: {name} ({} series, tolerance {tol}%)",
                    series.len()
                );
            } else {
                eprint!("{}", gate_failure_report(name, &regs, tol));
                std::process::exit(1);
            }
        }
    }
}

/// Compose the full failure output for a baseline-gate regression: the
/// regression diff table followed by the flight recorder's last-window
/// events for every rank of the most recent cluster run — the moments
/// right before the regression was measured. The dump is also written to
/// `target/flight/<name>.flight.txt` (for CI artifact upload) and handed
/// to the process anomaly hook ([`ncd_simnet::dump_on`]) as a
/// [`ncd_simnet::Anomaly::BaselineRegression`].
///
/// Split out of [`baseline_gate`] so tests can exercise the whole failure
/// path without exiting the process.
pub fn gate_failure_report(name: &str, regs: &[baseline::Regression], tol: f64) -> String {
    let mut out = baseline::render_regressions(name, regs, tol);
    if let Some(dump) = ncd_simnet::last_run_dump() {
        out.push_str(&dump);
        let dir = std::path::Path::new("target").join("flight");
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{name}.flight.txt"));
            if std::fs::write(&path, &dump).is_ok() {
                out.push_str(&format!(
                    "flight recorder dump written: {}\n",
                    path.display()
                ));
            }
        }
        ncd_simnet::trigger(
            &ncd_simnet::Anomaly::BaselineRegression {
                name: name.to_string(),
            },
            &dump,
        );
    }
    out
}

/// `-log_view`-style summary of the datatype pack pipeline, built from the
/// `datatype/*` metrics that the communication layer records per pipeline
/// block. One row per engine: blocks processed, sparse/dense classification
/// mix, total context-search segments (the quadratic signal), per-block
/// search and look-ahead averages, and bytes produced. Returns `None` when
/// the registry saw no datatype activity.
pub fn datatype_report(reg: &MetricsRegistry) -> Option<String> {
    let mut engines: Vec<String> = reg
        .counters()
        .filter(|(k, _)| k.subsystem == "datatype" && k.op == "blocks")
        .map(|(k, _)| k.algorithm.clone())
        .collect();
    engines.sort();
    engines.dedup();
    if engines.is_empty() {
        return None;
    }
    let mut out = String::from("\n=== datatype pack pipeline ===\n");
    out.push_str(&format!(
        "{:<16}{:>8}{:>8}{:>8}{:>12}{:>10}{:>12}{:>12}\n",
        "engine", "blocks", "sparse", "dense", "seek segs", "seek/blk", "lookahd/blk", "bytes"
    ));
    for e in &engines {
        let blocks = reg.counter("datatype", "blocks", e);
        let sparse = reg.counter("datatype", "sparse_blocks", e);
        let dense = reg.counter("datatype", "dense_blocks", e);
        let seek = reg.counter("datatype", "seek_total", e);
        let seek_per_block = if blocks > 0 {
            seek as f64 / blocks as f64
        } else {
            0.0
        };
        let lookahead_per_block = reg
            .histogram("datatype", "lookahead_window", e)
            .map(|h| h.mean())
            .unwrap_or(0.0);
        let bytes = reg
            .histogram("datatype", "block_bytes", e)
            .map(|h| h.sum())
            .unwrap_or(0);
        out.push_str(&format!(
            "{e:<16}{blocks:>8}{sparse:>8}{dense:>8}{seek:>12}{seek_per_block:>10.1}{lookahead_per_block:>12.1}{bytes:>12}\n"
        ));
    }
    Some(out)
}

/// `-log_view`-style summary of the event scheduler's own work during a
/// run (see [`ncd_simnet::SchedStats`]): context switches, park mix,
/// wake sources, ready-queue pressure, and the fiber-stack high-water
/// mark. One header row plus one value row, followed by the occupied
/// buckets of the ready-depth log₂ histogram. Returns `None` for an
/// empty survey (no tasks driven).
pub fn sched_report(stats: &ncd_simnet::SchedStats) -> Option<String> {
    if stats.tasks == 0 {
        return None;
    }
    let mut out = format!("\n=== event scheduler ({}) ===\n", stats.backend);
    out.push_str(&format!(
        "{:>8}{:>10}{:>11}{:>11}{:>10}{:>9}{:>10}{:>12}{:>12}\n",
        "tasks",
        "resumes",
        "parks-blk",
        "parks-poll",
        "wakes",
        "promos",
        "promoted",
        "mean-depth",
        "max-stack-B"
    ));
    out.push_str(&format!(
        "{:>8}{:>10}{:>11}{:>11}{:>10}{:>9}{:>10}{:>12.2}{:>12}\n",
        stats.tasks,
        stats.resumes,
        stats.parks_blocked,
        stats.parks_polling,
        stats.deposit_wakes,
        stats.poll_promotions,
        stats.promoted_tasks,
        stats.mean_depth(),
        stats.max_stack_bytes
    ));
    let buckets: Vec<String> = stats
        .ready_depth_log2
        .iter()
        .enumerate()
        .filter(|(_, &count)| count > 0)
        .map(|(i, count)| {
            let lo = 1u64 << i;
            let hi = (1u64 << (i + 1)) - 1;
            if lo == hi {
                format!("{lo}:{count}")
            } else {
                format!("{lo}-{hi}:{count}")
            }
        })
        .collect();
    if !buckets.is_empty() {
        out.push_str(&format!("ready-queue depth: {}\n", buckets.join("  ")));
    }
    Some(out)
}

/// Table of the `decision/*` metrics the auto-selecting collectives emit:
/// one row per (collective, chosen algorithm) with call count, bytes seen,
/// and the last recorded outlier-ratio evidence, followed by the stated
/// selection reasons. Returns `None` when no decision was recorded.
pub fn decision_report(reg: &MetricsRegistry) -> Option<String> {
    let mut rows: Vec<(String, String)> = reg
        .counters()
        .filter(|(k, _)| k.subsystem == "decision")
        .map(|(k, _)| (k.op.clone(), k.algorithm.clone()))
        .collect();
    rows.sort();
    rows.dedup();
    if rows.is_empty() {
        return None;
    }
    let mut out = String::from("\n=== collective algorithm decisions ===\n");
    out.push_str(&format!(
        "{:<13}{:<22}{:>8}{:>14}{:>12}{:>10}\n",
        "collective", "chosen", "calls", "bytes", "mean B", "ratio"
    ));
    for (coll, chosen) in &rows {
        let calls = reg.counter("decision", coll, chosen);
        let h = reg.histogram("decision_bytes", coll, chosen);
        let bytes = h.map(|h| h.sum()).unwrap_or(0);
        let mean = h.map(|h| h.mean()).unwrap_or(0.0);
        let ratio = reg
            .gauge("decision_ratio", coll, chosen)
            .map(|r| format!("{r:.1}"))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{coll:<13}{chosen:<22}{calls:>8}{bytes:>14}{mean:>12.0}{ratio:>10}\n"
        ));
    }
    let mut reasons: Vec<(String, String, u64)> = reg
        .counters()
        .filter(|(k, _)| k.subsystem == "decision_reason")
        .map(|(k, v)| (k.op.clone(), k.algorithm.clone(), v))
        .collect();
    reasons.sort();
    for (coll, reason, count) in &reasons {
        out.push_str(&format!("  {coll}: {reason} ({count})\n"));
    }
    Some(out)
}

fn fmt_ratio(r: f64) -> String {
    if r.is_infinite() {
        "inf".to_string()
    } else {
        format!("{r:.1}")
    }
}

/// "Who talks to whom" summary of a merged communication map: the ASCII
/// heatmap, nonuniformity analytics of the total matrix (outlier ratio,
/// spread, Gini), the hottest pairs, and the per-epoch breakdown. Returns
/// `None` when the map saw no traffic.
pub fn comm_report(map: &ClusterCommMap) -> Option<String> {
    let (total, epochs) = ncd_core::analyze_comm_map(map, 0.9, 5);
    let total = total?;
    let mut out = format!(
        "\n=== communication map ({} ranks, {} B, {} msgs) ===\n",
        map.n,
        map.total.total_bytes(),
        map.total.total_msgs()
    );
    out.push_str(&ncd_simnet::render_heatmap(&map.total));
    out.push_str(&format!(
        "pairs={} max={} B min={} B mean={:.0} B spread={} outlier-ratio={} gini={:.3}\n",
        total.pairs,
        total.max_bytes,
        total.min_bytes,
        total.mean_bytes,
        fmt_ratio(total.spread),
        fmt_ratio(total.outlier_ratio),
        total.gini
    ));
    out.push_str("hot pairs:");
    for (s, d, b) in &total.top {
        out.push_str(&format!(" {s}->{d}:{b}B"));
    }
    out.push('\n');
    if !epochs.is_empty() {
        out.push_str("per-epoch nonuniformity:\n");
        for e in &epochs {
            let a = &e.analysis;
            let bytes = (a.mean_bytes * a.pairs as f64).round() as u64;
            out.push_str(&format!(
                "  {:<30} pairs={:>4} bytes={:>12} outlier-ratio={:>8} gini={:.3}\n",
                format!("{}#{}", e.label, e.occurrence),
                a.pairs,
                bytes,
                fmt_ratio(a.outlier_ratio),
                a.gini
            ));
        }
    }
    Some(out)
}

/// Run `body` on a cluster and return the per-iteration completion time
/// (max over ranks), plus each rank's stats for breakdown reporting.
///
/// `body` receives the communicator and the iteration index; one warmup
/// iteration (index `usize::MAX`) runs before the clocks reset.
pub fn time_phase<F>(
    cluster_cfg: ClusterConfig,
    mpi_cfg: MpiConfig,
    reps: usize,
    body: F,
) -> (SimTime, Vec<Stats>)
where
    F: Fn(&mut Comm, usize) + Send + Sync,
{
    assert!(reps > 0);
    let out = Cluster::new(cluster_cfg).run(|rank| {
        let mut comm = Comm::new(rank, mpi_cfg.clone());
        body(&mut comm, usize::MAX); // warmup
        comm.barrier();
        comm.rank_mut().reset_clock();
        let _ = comm.rank_mut().take_stats();
        for it in 0..reps {
            body(&mut comm, it);
        }
        let t = comm.rank_ref().now();
        let stats = comm.rank_ref().stats().clone();
        (t, stats)
    });
    let tmax = out.iter().map(|(t, _)| *t).max().expect("nonempty cluster");
    let stats = out.into_iter().map(|(_, s)| s).collect();
    (SimTime::from_ns(tmax.as_ns() / reps as u64), stats)
}

/// [`time_phase`] with the metrics registry enabled on every rank: also
/// returns the cluster-wide merge of the per-rank registries collected
/// over the measured (post-warmup) iterations.
pub fn time_phase_metrics<F>(
    cluster_cfg: ClusterConfig,
    mpi_cfg: MpiConfig,
    reps: usize,
    body: F,
) -> (SimTime, Vec<Stats>, MetricsRegistry)
where
    F: Fn(&mut Comm, usize) + Send + Sync,
{
    assert!(reps > 0);
    let out = Cluster::new(cluster_cfg).run(|rank| {
        rank.enable_metrics();
        let mut comm = Comm::new(rank, mpi_cfg.clone());
        body(&mut comm, usize::MAX); // warmup
        comm.barrier();
        comm.rank_mut().reset_clock();
        let _ = comm.rank_mut().take_stats();
        let _ = comm.rank_mut().take_metrics(); // drop warmup metrics
        for it in 0..reps {
            body(&mut comm, it);
        }
        let t = comm.rank_ref().now();
        let stats = comm.rank_ref().stats().clone();
        let metrics = comm.rank_mut().take_metrics();
        (t, stats, metrics)
    });
    let tmax = out
        .iter()
        .map(|(t, _, _)| *t)
        .max()
        .expect("nonempty cluster");
    let mut merged = MetricsRegistry::enabled();
    let mut stats = Vec::with_capacity(out.len());
    for (_, s, m) in out {
        merged.merge(&m);
        stats.push(s);
    }
    (SimTime::from_ns(tmax.as_ns() / reps as u64), stats, merged)
}

/// [`time_phase_metrics`] with the communication map additionally enabled
/// on every rank: also returns the cluster-merged [`ClusterCommMap`]
/// covering the measured (post-warmup) iterations. Neither the metrics
/// registry nor the comm map ever touches the simulated clock, so the
/// returned times are identical to an uninstrumented run.
pub fn time_phase_observed<F>(
    cluster_cfg: ClusterConfig,
    mpi_cfg: MpiConfig,
    reps: usize,
    body: F,
) -> (SimTime, Vec<Stats>, MetricsRegistry, ClusterCommMap)
where
    F: Fn(&mut Comm, usize) + Send + Sync,
{
    assert!(reps > 0);
    let out = Cluster::new(cluster_cfg).run(|rank| {
        rank.enable_metrics();
        rank.enable_comm_map();
        let mut comm = Comm::new(rank, mpi_cfg.clone());
        body(&mut comm, usize::MAX); // warmup
        comm.barrier();
        comm.rank_mut().reset_clock();
        let _ = comm.rank_mut().take_stats();
        let _ = comm.rank_mut().take_metrics(); // drop warmup metrics
        let _ = comm.rank_mut().take_comm_map(); // drop warmup traffic
        for it in 0..reps {
            body(&mut comm, it);
        }
        let t = comm.rank_ref().now();
        let stats = comm.rank_ref().stats().clone();
        let metrics = comm.rank_mut().take_metrics();
        let map = comm.rank_mut().take_comm_map();
        (t, stats, metrics, map)
    });
    let tmax = out
        .iter()
        .map(|(t, _, _, _)| *t)
        .max()
        .expect("nonempty cluster");
    let mut merged = MetricsRegistry::enabled();
    let mut stats = Vec::with_capacity(out.len());
    let mut maps = Vec::with_capacity(out.len());
    for (_, s, m, map) in out {
        merged.merge(&m);
        stats.push(s);
        maps.push(map);
    }
    let comm_map = merge_comm_maps(&maps);
    (
        SimTime::from_ns(tmax.as_ns() / reps as u64),
        stats,
        merged,
        comm_map,
    )
}

/// [`time_phase_observed`] with the epoch history additionally enabled on
/// every rank: also returns the cluster-merged [`History`] time series of
/// the measured (post-warmup) iterations — one point per collective epoch
/// and profiling stage — with the online drift monitor armed, so regime
/// shifts inside the measured window land in the trace, metrics, and the
/// flight recorder's drift ring. Like the other observers, the history
/// never touches the simulated clock.
#[allow(clippy::type_complexity)]
pub fn time_phase_history<F>(
    cluster_cfg: ClusterConfig,
    mpi_cfg: MpiConfig,
    reps: usize,
    body: F,
) -> (
    SimTime,
    Vec<Stats>,
    MetricsRegistry,
    ClusterCommMap,
    History,
)
where
    F: Fn(&mut Comm, usize) + Send + Sync,
{
    assert!(reps > 0);
    let out = Cluster::new(cluster_cfg).run(|rank| {
        rank.enable_metrics();
        rank.enable_history(); // also enables the comm map it derives from
        let mut comm = Comm::new(rank, mpi_cfg.clone());
        body(&mut comm, usize::MAX); // warmup
        comm.barrier();
        comm.rank_mut().reset_clock();
        let _ = comm.rank_mut().take_stats();
        let _ = comm.rank_mut().take_metrics(); // drop warmup metrics
        let _ = comm.rank_mut().take_comm_map(); // drop warmup traffic
        let _ = comm.rank_mut().take_history(); // drop warmup epochs
        for it in 0..reps {
            body(&mut comm, it);
        }
        let t = comm.rank_ref().now();
        let stats = comm.rank_ref().stats().clone();
        let metrics = comm.rank_mut().take_metrics();
        let map = comm.rank_mut().take_comm_map();
        let history = comm.rank_mut().take_history();
        (t, stats, metrics, map, history)
    });
    let tmax = out
        .iter()
        .map(|(t, _, _, _, _)| *t)
        .max()
        .expect("nonempty cluster");
    let mut merged = MetricsRegistry::enabled();
    let mut stats = Vec::with_capacity(out.len());
    let mut maps = Vec::with_capacity(out.len());
    let mut histories = Vec::with_capacity(out.len());
    for (_, s, m, map, h) in out {
        merged.merge(&m);
        stats.push(s);
        maps.push(map);
        histories.push(h);
    }
    (
        SimTime::from_ns(tmax.as_ns() / reps as u64),
        stats,
        merged,
        merge_comm_maps(&maps),
        merge_histories(&histories),
    )
}

/// [`time_phase_history`] with per-rank event tracing additionally
/// enabled: also returns every rank's trace of the measured (post-warmup)
/// iterations, so the caller can derive the critical path, the
/// algorithm-decision audit, and the wait-state diagnosis — everything
/// the observatory ledger persists. This is the most expensive
/// observation mode; benches run it once, on a representative
/// configuration, only when [`BenchCli::wants_observatory`].
#[allow(clippy::type_complexity)]
pub fn time_phase_traced<F>(
    cluster_cfg: ClusterConfig,
    mpi_cfg: MpiConfig,
    reps: usize,
    body: F,
) -> (
    SimTime,
    Vec<Stats>,
    MetricsRegistry,
    ClusterCommMap,
    History,
    Vec<Vec<TraceEvent>>,
)
where
    F: Fn(&mut Comm, usize) + Send + Sync,
{
    assert!(reps > 0);
    let out = Cluster::new(cluster_cfg).run(|rank| {
        rank.enable_metrics();
        rank.enable_history(); // also enables the comm map it derives from
        rank.enable_tracing();
        let mut comm = Comm::new(rank, mpi_cfg.clone());
        body(&mut comm, usize::MAX); // warmup
        comm.barrier();
        comm.rank_mut().reset_clock();
        let _ = comm.rank_mut().take_stats();
        let _ = comm.rank_mut().take_metrics(); // drop warmup metrics
        let _ = comm.rank_mut().take_comm_map(); // drop warmup traffic
        let _ = comm.rank_mut().take_history(); // drop warmup epochs
        let _ = comm.rank_mut().take_trace(); // drop warmup events
        for it in 0..reps {
            body(&mut comm, it);
        }
        let t = comm.rank_ref().now();
        let stats = comm.rank_ref().stats().clone();
        let metrics = comm.rank_mut().take_metrics();
        let map = comm.rank_mut().take_comm_map();
        let history = comm.rank_mut().take_history();
        let trace = comm.rank_mut().take_trace();
        (t, stats, metrics, map, history, trace)
    });
    let tmax = out
        .iter()
        .map(|(t, ..)| *t)
        .max()
        .expect("nonempty cluster");
    let mut merged = MetricsRegistry::enabled();
    let mut stats = Vec::with_capacity(out.len());
    let mut maps = Vec::with_capacity(out.len());
    let mut histories = Vec::with_capacity(out.len());
    let mut traces = Vec::with_capacity(out.len());
    for (_, s, m, map, h, tr) in out {
        merged.merge(&m);
        stats.push(s);
        maps.push(map);
        histories.push(h);
        traces.push(tr);
    }
    (
        SimTime::from_ns(tmax.as_ns() / reps as u64),
        stats,
        merged,
        merge_comm_maps(&maps),
        merge_histories(&histories),
        traces,
    )
}

/// Byte-stable JSON of a bench's series for the observatory ledger: the
/// same `[x, y]` point layout as the figure report, led by the shared
/// schema version so the differential engine can re-load it.
pub fn series_json(name: &str, smoke: bool, series: &[Series]) -> String {
    let esc = ncd_simnet::export::json_escape;
    let mut out = format!(
        "{{\"schema\":{SCHEMA_VERSION},\"name\":\"{}\",\"mode\":\"{}\",\"series\":[",
        esc(name),
        if smoke { "smoke" } else { "full" }
    );
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"label\":\"{}\",\"points\":[", esc(&s.label)));
        for (j, (x, y)) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let y_json = if y.is_finite() {
                y.to_string()
            } else {
                "null".to_string()
            };
            out.push_str(&format!("[\"{}\",{y_json}]", esc(x)));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Persist one run into the observatory ledger
/// (`target/observatory/<name>/<run-id>/`, override with
/// `NCD_OBSERVATORY`): the gated series plus every byte-stable export the
/// bench collected — metrics snapshot, comm matrix, epoch history, and
/// (from the traces) critical-path analysis, the algorithm-decision
/// audit, and the wait-state diagnosis. The run id is a deterministic
/// content hash, so re-ledgering an unchanged run is idempotent and an id
/// change is itself a behaviour-change signal.
///
/// `whatif` is the causal profile's byte-stable JSON when the bench ran
/// the what-if phase (see [`whatif_phase`]); `None` keeps the artifact
/// set — and therefore the run id — identical to a run without it.
#[allow(clippy::too_many_arguments)]
pub fn report_to_ledger(
    name: &str,
    smoke: bool,
    knobs: &[(String, String)],
    series: &[Series],
    metrics: Option<&MetricsRegistry>,
    comm_map: Option<&ClusterCommMap>,
    history: Option<&History>,
    traces: Option<&[Vec<TraceEvent>]>,
    whatif: Option<&str>,
) -> std::io::Result<RunManifest> {
    let mut artifacts: Vec<(String, String)> =
        vec![("series.json".to_string(), series_json(name, smoke, series))];
    if let Some(m) = metrics {
        // metrics_json carries no schema field of its own; wrap it so the
        // artifact leads with the shared version like every other export.
        artifacts.push((
            "metrics.json".to_string(),
            format!(
                "{{\"schema\":{SCHEMA_VERSION},\"metrics\":{}}}",
                ncd_simnet::metrics_json(m)
            ),
        ));
    }
    if let Some(map) = comm_map {
        artifacts.push(("comm.json".to_string(), ncd_simnet::comm_matrix_json(map)));
    }
    if let Some(h) = history {
        artifacts.push(("history.json".to_string(), ncd_simnet::history_json(h)));
    }
    if let Some(traces) = traces {
        let path = ncd_simnet::HbGraph::build(traces).critical_path();
        let attr = ncd_simnet::attribute_rounds(traces);
        artifacts.push((
            "analysis.json".to_string(),
            ncd_simnet::analysis_json(&path, &attr),
        ));
        // Decisions are symmetric across ranks (every rank selects from
        // the same counts); rank 0's audit stands for the run.
        artifacts.push((
            "decisions.json".to_string(),
            ncd_core::decisions_json(&ncd_core::decisions_from_trace(&traces[0])),
        ));
        artifacts.push((
            "diagnosis.json".to_string(),
            ncd_simnet::diagnosis_json(&ncd_simnet::diagnose(traces)),
        ));
    }
    if let Some(json) = whatif {
        artifacts.push(("whatif.json".to_string(), json.to_string()));
    }
    let root = ncd_simnet::ledger_root();
    let mode = if smoke { "smoke" } else { "full" };
    let manifest = ncd_simnet::write_run(&root, name, mode, knobs, &artifacts)?;
    println!(
        "run ledgered: {name} {} -> {}",
        manifest.run_id,
        root.join(name).join(&manifest.run_id).display()
    );
    Ok(manifest)
}

/// Resolve a `--compare` spec for `name` against the ledger at `root`.
/// Beyond [`ncd_simnet::resolve_run_dir`]'s forms (`latest`, a 16-hex run
/// id, a run-directory path), a path to an *alternate ledger root*
/// containing `<name>/latest` — e.g. a committed reference tree — is
/// followed to that root's latest run for this bench.
fn resolve_compare_dir(
    root: &std::path::Path,
    name: &str,
    spec: &str,
) -> Result<std::path::PathBuf, String> {
    let p = std::path::Path::new(spec);
    if p.is_dir() && p.join(name).join("latest").is_file() {
        let id = ncd_simnet::latest_run_id(p, name)
            .ok_or_else(|| format!("empty latest pointer under {}/{name}", p.display()))?;
        return Ok(p.join(name).join(id));
    }
    let dir = ncd_simnet::resolve_run_dir(root, name, spec)?;
    if dir.join("manifest.json").is_file() {
        Ok(dir)
    } else {
        Err(format!("no ledgered run at {}", dir.display()))
    }
}

/// Tie-break-seed perturbations the what-if phase replays each intervened
/// configuration under. The event scheduler's contract says the result
/// must not change, so any spread across these marks the measurement (not
/// the simulation) as fragile.
pub const WHATIF_SEEDS: &[u64] = &[7, 99];

/// Run the counterfactual what-if profiler over a diagnosis run's traces:
/// plan targeted interventions from the findings and the decision audit
/// ([`ncd_core::plan_experiments`]), deterministically replay each one on
/// the event backend ([`ncd_core::causal_profile`]), print the causal
/// profile and the findings with their measured `verified_gain`, and
/// write the byte-stable JSON to `target/analysis/<name>.whatif.json`.
///
/// Returns the JSON for ledgering — benches stash it in
/// [`BenchCli::whatif_artifact`] before calling
/// [`BenchCli::observatory`]. `None` when the planner found nothing to
/// test. `workload` must be the same workload the traces came from, or
/// the replayed gains verify a different run than the one diagnosed.
pub fn whatif_phase<F>(
    name: &str,
    cluster: &ClusterConfig,
    mpi: &MpiConfig,
    traces: &[Vec<TraceEvent>],
    comm_map: Option<&ClusterCommMap>,
    workload: F,
) -> Option<String>
where
    F: Fn(&mut Comm) + Send + Sync,
{
    let mut diag = ncd_simnet::diagnose(traces);
    let decisions = ncd_core::decisions_from_trace(&traces[0]);
    let audit = ncd_core::detect_misselections(&decisions, comm_map, &cluster.cost, mpi);
    let plan = ncd_core::plan_experiments(&diag, &decisions, &audit, 3);
    if plan.is_empty() {
        println!("\nwhat-if: no findings or flags to test for {name}");
        return None;
    }
    let profile = ncd_core::causal_profile(cluster, mpi, &plan, WHATIF_SEEDS, &workload);
    profile.apply_verified_gains(&mut diag);
    print!("{}", ncd_core::whatif_report(&profile));
    print!("\n{}", diag.render(5));
    let json = ncd_core::whatif_json(&profile);
    let dir = std::path::Path::new("target").join("analysis");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.whatif.json"));
        if std::fs::write(&path, &json).is_ok() {
            println!("what-if profile written: {}", path.display());
        }
    }
    Some(json)
}

/// Aggregate per-rank stats into one cluster-wide breakdown.
pub fn aggregate(stats: &[Stats]) -> Stats {
    let mut total = Stats::new();
    for s in stats {
        total.merge(s);
    }
    total
}

/// Percentage improvement of `new` over `old` (positive = new is faster).
pub fn improvement_pct(old: SimTime, new: SimTime) -> f64 {
    if old.as_ns() == 0 {
        return 0.0;
    }
    100.0 * (old.as_ns() as f64 - new.as_ns() as f64) / old.as_ns() as f64
}

/// A labelled series of (x, y) points for table/CSV output.
pub struct Series {
    pub label: String,
    pub points: Vec<(String, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: impl Into<String>, y: f64) {
        self.points.push((x.into(), y));
    }
}

/// Prefix every series label with `prefix/` so two sweeps of the same
/// bench (which often reuse labels like "MVAPICH2-0.9.5") can share one
/// ledgered run without colliding in the differential's label-keyed
/// series join.
pub fn relabel(prefix: &str, series: &[Series]) -> Vec<Series> {
    series
        .iter()
        .map(|s| Series {
            label: format!("{prefix}/{}", s.label),
            points: s.points.clone(),
        })
        .collect()
}

/// Print an aligned table of several series sharing the x axis, and write
/// the same data as CSV under `target/figures/<name>.csv`. When a JSON
/// report is requested (see [`json_report_requested`]) the series are also
/// written to `target/figures/<name>.json`; benches that collect metrics
/// use [`report_with_metrics`] to include the registry snapshot.
pub fn report(name: &str, x_label: &str, y_label: &str, series: &[Series]) {
    report_impl(name, x_label, y_label, series, None, None, None, None)
}

#[allow(clippy::too_many_arguments)]
fn report_impl(
    name: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    metrics: Option<&MetricsRegistry>,
    comm_map: Option<&ClusterCommMap>,
    history: Option<&History>,
    diagnosis: Option<&Diagnosis>,
) {
    println!("\n=== {name} ({y_label}) ===");
    print!("{:>14}", x_label);
    for s in series {
        print!("{:>22}", s.label);
    }
    println!();
    let npoints = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..npoints {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|(x, _)| x.clone()))
            .unwrap_or_default();
        print!("{x:>14}");
        for s in series {
            match s.points.get(i) {
                Some((_, y)) => print!("{y:>22.3}"),
                None => print!("{:>22}", "-"),
            }
        }
        println!();
    }

    // The pack-pipeline summary rides along whenever the collected metrics
    // saw datatype-engine activity (noncontiguous sends).
    if let Some(table) = metrics.and_then(datatype_report) {
        print!("{table}");
    }

    // So does the algorithm-decision audit, whenever an auto-selecting
    // collective ran under the registry; the table is also written next to
    // the figures for CI artifact upload.
    if let Some(table) = metrics.and_then(decision_report) {
        print!("{table}");
        let dir = std::path::Path::new("target").join("analysis");
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("{name}.decisions.txt")), &table);
        }
    }

    // And the who-talks-to-whom map, when one was collected
    // ([`time_phase_observed`] / [`report_with_observability`]); the raw
    // matrix goes to `target/analysis/<name>.comm.json` for artifacts.
    if let Some(map) = comm_map {
        if let Some(table) = comm_report(map) {
            print!("{table}");
        }
        let dir = std::path::Path::new("target").join("analysis");
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = ncd_simnet::write_comm_matrix_json(dir.join(format!("{name}.comm.json")), map);
        }
    }

    // The epoch time series, when one was collected
    // ([`time_phase_history`] / [`report_with_history`]): the sparkline
    // dashboard, any regime shifts an offline replay detects, and the
    // pattern-recurrence table. The byte-stable series goes to
    // `target/analysis/<name>.history.json` for artifacts.
    if let Some(h) = history {
        print!("\n{}", ncd_simnet::history_report(h));
        let drift = ncd_core::detect_drift(h, &DriftConfig::default());
        if !drift.is_empty() {
            print!("\n{}", ncd_core::render_drift_events(&drift));
        }
        let recurrence = ncd_core::pattern_recurrence(h);
        if !recurrence.is_empty() {
            print!("\n{}", ncd_core::render_recurrence(&recurrence));
        }
        let dir = std::path::Path::new("target").join("analysis");
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = ncd_simnet::write_history_json(dir.join(format!("{name}.history.json")), h);
        }
    }

    // The root-cause diagnosis, when the bench classified its traces
    // ([`report_with_diagnosis`]): the ranked wait-pattern findings and
    // blame matrix, with the byte-stable classification JSON written to
    // `target/analysis/<name>.diagnosis.json` for CI artifact upload.
    if let Some(d) = diagnosis {
        print!("\n{}", d.render(10));
        let dir = std::path::Path::new("target").join("analysis");
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = ncd_simnet::write_diagnosis_json(dir.join(format!("{name}.diagnosis.json")), d);
        }
    }

    // The scheduler's introspection survey of the most recent
    // event-driven run — how hard the event loop itself worked to
    // produce the numbers above. Purely informational: it reflects the
    // last run before this report, and nothing under the threads
    // backend.
    if let Some(table) = ncd_simnet::last_sched_stats()
        .as_ref()
        .and_then(sched_report)
    {
        print!("{table}");
    }

    // CSV alongside (best effort; benches may run in read-only setups).
    let dir = std::path::Path::new("target").join("figures");
    if std::fs::create_dir_all(&dir).is_ok() {
        let mut csv = String::new();
        csv.push_str(x_label);
        for s in series {
            csv.push(',');
            csv.push_str(&s.label);
        }
        csv.push('\n');
        for i in 0..npoints {
            let x = series
                .iter()
                .find_map(|s| s.points.get(i).map(|(x, _)| x.clone()))
                .unwrap_or_default();
            csv.push_str(&x);
            for s in series {
                csv.push(',');
                if let Some((_, y)) = s.points.get(i) {
                    csv.push_str(&format!("{y}"));
                }
            }
            csv.push('\n');
        }
        let _ = std::fs::write(dir.join(format!("{name}.csv")), csv);
    }

    if json_report_requested() {
        write_json_report(name, x_label, y_label, series, metrics);
    }
}

/// Whether a machine-readable JSON report was requested, via
/// `--report json` / `--report=json` on the command line or
/// `NCD_REPORT=json` in the environment.
pub fn json_report_requested() -> bool {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--report=json" {
            return true;
        }
        if a == "--report" && args.next().as_deref() == Some("json") {
            return true;
        }
    }
    std::env::var("NCD_REPORT").as_deref() == Ok("json")
}

/// [`report`], plus — when `--report json` (or `NCD_REPORT=json`) is in
/// effect — a machine-readable run report written to
/// `target/figures/<name>.json`: the same series as the CSV, and a
/// snapshot of the cluster-merged metrics registry when one was collected.
pub fn report_with_metrics(
    name: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    metrics: Option<&MetricsRegistry>,
) {
    report_impl(name, x_label, y_label, series, metrics, None, None, None)
}

/// [`report_with_metrics`], plus the merged communication map: appends the
/// [`comm_report`] heatmap/analytics next to the datatype and decision
/// tables, and writes the byte-stable matrix JSON to
/// `target/analysis/<name>.comm.json` for CI artifact upload.
pub fn report_with_observability(
    name: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    metrics: Option<&MetricsRegistry>,
    comm_map: Option<&ClusterCommMap>,
) {
    report_impl(
        name, x_label, y_label, series, metrics, comm_map, None, None,
    )
}

/// [`report_with_observability`], plus the merged epoch [`History`]:
/// appends the time-series sparkline dashboard, offline drift events and
/// the pattern-recurrence table, and writes the byte-stable series JSON
/// to `target/analysis/<name>.history.json` for CI artifact upload.
pub fn report_with_history(
    name: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    metrics: Option<&MetricsRegistry>,
    comm_map: Option<&ClusterCommMap>,
    history: Option<&History>,
) {
    report_impl(
        name, x_label, y_label, series, metrics, comm_map, history, None,
    )
}

/// [`report_with_history`], plus a wait-state [`Diagnosis`] classified
/// from the bench's traces: appends the ranked finding table and blame
/// matrix to the report and writes the byte-stable classification JSON
/// to `target/analysis/<name>.diagnosis.json` for CI artifact upload.
#[allow(clippy::too_many_arguments)]
pub fn report_with_diagnosis(
    name: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    metrics: Option<&MetricsRegistry>,
    comm_map: Option<&ClusterCommMap>,
    history: Option<&History>,
    diagnosis: Option<&Diagnosis>,
) {
    report_impl(
        name, x_label, y_label, series, metrics, comm_map, history, diagnosis,
    )
}

fn write_json_report(
    name: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    metrics: Option<&MetricsRegistry>,
) {
    let esc = ncd_simnet::export::json_escape;
    let mut out = format!(
        "{{\"name\":\"{}\",\"x_label\":\"{}\",\"y_label\":\"{}\",\"series\":[",
        esc(name),
        esc(x_label),
        esc(y_label)
    );
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"label\":\"{}\",\"points\":[", esc(&s.label)));
        for (j, (x, y)) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let y_json = if y.is_finite() {
                y.to_string()
            } else {
                "null".to_string()
            };
            out.push_str(&format!("[\"{}\",{y_json}]", esc(x)));
        }
        out.push_str("]}");
    }
    out.push(']');
    if let Some(m) = metrics {
        out.push_str(",\"metrics\":");
        out.push_str(&ncd_simnet::metrics_json(m));
    }
    out.push('}');
    let dir = std::path::Path::new("target").join("figures");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if std::fs::write(&path, out).is_ok() {
            println!("json report: {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncd_simnet::Tag;

    #[test]
    fn time_phase_measures_per_iteration() {
        let ping = |comm: &mut Comm, _it: usize| {
            if comm.rank() == 0 {
                comm.rank_mut().send_bytes(1, Tag(0), vec![0; 1200]);
            } else {
                let _ = comm.rank_mut().recv_bytes(Some(0), Tag(0));
            }
        };
        let (t1, _) = time_phase(ClusterConfig::uniform(2), MpiConfig::optimized(), 1, ping);
        let (t4, _) = time_phase(ClusterConfig::uniform(2), MpiConfig::optimized(), 4, ping);
        // Per-iteration time should be roughly rep-count independent.
        let ratio = t1.as_ns() as f64 / t4.as_ns() as f64;
        assert!((0.3..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn improvement_pct_signs() {
        assert_eq!(improvement_pct(SimTime(100), SimTime(50)), 50.0);
        assert_eq!(improvement_pct(SimTime(100), SimTime(100)), 0.0);
        assert!(improvement_pct(SimTime(50), SimTime(100)) < 0.0);
        assert_eq!(improvement_pct(SimTime(0), SimTime(10)), 0.0);
    }

    #[test]
    fn series_and_report_do_not_panic() {
        let mut s = Series::new("test");
        s.push("1", 2.0);
        s.push("2", 4.0);
        report("unit_test_fig", "x", "y", &[s]);
    }

    #[test]
    fn time_phase_metrics_collects_cluster_registry() {
        let (_, stats, metrics) = time_phase_metrics(
            ClusterConfig::uniform(2),
            MpiConfig::optimized(),
            2,
            |comm, _| {
                let counts = vec![16usize; 2];
                let send = vec![1u8; 16];
                let mut recv = vec![0u8; 32];
                comm.allgatherv(&send, &counts, &mut recv);
            },
        );
        assert_eq!(stats.len(), 2);
        // 2 ranks x 2 measured reps (warmup metrics dropped).
        let h = metrics
            .histogram("allgatherv", "bytes", "adaptive")
            .expect("adaptive histogram");
        assert_eq!(h.count(), 4);
        // The flat-time counters mirror Stats exactly, cluster-wide.
        let total: u64 = aggregate(&stats).total().as_ns();
        let counted: u64 = ncd_simnet::CostKind::ALL
            .iter()
            .map(|k| metrics.counter("time", k.label(), ""))
            .sum();
        assert_eq!(counted, total);
    }

    #[test]
    fn json_report_writes_valid_file_when_requested() {
        let mut s = Series::new("baseline");
        s.push("64", 1.5);
        std::env::set_var("NCD_REPORT", "json");
        let mut reg = MetricsRegistry::enabled();
        reg.counter_add("a", "b", "c", 7);
        report_with_metrics("unit_test_json_fig", "n", "us", &[s], Some(&reg));
        std::env::remove_var("NCD_REPORT");
        let path = std::path::Path::new("target/figures/unit_test_json_fig.json");
        let json = std::fs::read_to_string(path).expect("json report written");
        assert!(json.starts_with("{\"name\":\"unit_test_json_fig\""));
        assert!(json.contains("\"points\":[[\"64\",1.5]]"));
        assert!(json.contains("\"key\":\"a/b/c\",\"value\":7"));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn datatype_report_summarizes_engines() {
        let mut reg = MetricsRegistry::enabled();
        reg.counter_add("datatype", "blocks", "single-context", 4);
        reg.counter_add("datatype", "sparse_blocks", "single-context", 3);
        reg.counter_add("datatype", "dense_blocks", "single-context", 1);
        reg.counter_add("datatype", "seek_total", "single-context", 120);
        reg.observe("datatype", "lookahead_window", "single-context", 8);
        reg.observe("datatype", "block_bytes", "single-context", 4096);
        reg.counter_add("datatype", "blocks", "dual-context", 4);
        let table = datatype_report(&reg).expect("datatype activity present");
        assert!(table.contains("datatype pack pipeline"));
        assert!(table.contains("single-context"));
        assert!(table.contains("dual-context"));
        // 120 seeks over 4 blocks = 30.0 per block.
        assert!(table.contains("30.0"), "table:\n{table}");
        assert!(table.contains("4096"), "table:\n{table}");
    }

    #[test]
    fn decision_report_tabulates_choices_and_reasons() {
        let mut reg = MetricsRegistry::enabled();
        reg.counter_add("decision", "allgatherv", "ring", 16);
        reg.counter_add(
            "decision_reason",
            "allgatherv",
            "total >= long threshold",
            16,
        );
        reg.gauge_set("decision_ratio", "allgatherv", "ring", 8192.0);
        reg.observe("decision_bytes", "allgatherv", "ring", 65_664);
        let table = decision_report(&reg).expect("decisions present");
        assert!(table.contains("collective algorithm decisions"));
        assert!(table.contains("ring") && table.contains("8192.0"));
        assert!(table.contains("total >= long threshold (16)"));
        assert!(decision_report(&MetricsRegistry::enabled()).is_none());
    }

    #[test]
    fn observed_phase_collects_map_and_decision_metrics() {
        let counts = vec![64usize; 4];
        let (_, stats, metrics, map) = time_phase_observed(
            ClusterConfig::uniform(4),
            MpiConfig::optimized(),
            2,
            move |comm, _| {
                let send = vec![1u8; 64];
                let mut recv = vec![0u8; 256];
                comm.allgatherv(&send, &counts, &mut recv);
            },
        );
        assert_eq!(stats.len(), 4);
        // 4 ranks x 2 measured reps, warmup dropped.
        assert_eq!(
            metrics.counter("decision", "allgatherv", "recursive_doubling"),
            8
        );
        assert_eq!(map.n, 4);
        assert!(map.total.total_bytes() > 0);
        // Warmup traffic was dropped: exactly the 2 measured epochs.
        let epochs: Vec<_> = map
            .epochs
            .iter()
            .filter(|e| e.label == "allgatherv/recursive_doubling")
            .collect();
        assert_eq!(epochs.len(), 2);
        // The map columns match what each rank's mailbox delivered.
        for (r, s) in stats.iter().enumerate() {
            assert_eq!(map.total.col_bytes(r), s.bytes_recvd, "rank {r}");
        }
        let table = comm_report(&map).expect("traffic present");
        assert!(table.contains("communication map (4 ranks"));
        assert!(table.contains("allgatherv/recursive_doubling#0"));
        assert!(table.contains("hot pairs:"));
        assert!(comm_report(&merge_comm_maps(&[ncd_simnet::RankCommMap::new(0, 1)])).is_none());
    }

    #[test]
    fn observability_report_writes_artifacts() {
        let mut s = Series::new("latency");
        s.push("4", 1.0);
        let mut reg = MetricsRegistry::enabled();
        reg.counter_add("decision", "alltoallw", "binned", 3);
        let mut m0 = ncd_simnet::RankCommMap::new(0, 2);
        let mut m1 = ncd_simnet::RankCommMap::new(1, 2);
        m0.enable();
        m1.enable();
        m1.record_delivery(0, 4096);
        let map = merge_comm_maps(&[m0, m1]);
        report_with_observability("unit_test_obs_fig", "n", "us", &[s], Some(&reg), Some(&map));
        let json = std::fs::read_to_string("target/analysis/unit_test_obs_fig.comm.json")
            .expect("comm matrix artifact");
        assert!(json.starts_with("{\"schema\":1,\"ranks\":2,"));
        assert!(json.contains("[0,1,4096,1]"));
        let decisions = std::fs::read_to_string("target/analysis/unit_test_obs_fig.decisions.txt")
            .expect("decision table artifact");
        assert!(decisions.contains("binned"));
    }

    #[test]
    fn datatype_report_empty_without_pack_activity() {
        let mut reg = MetricsRegistry::enabled();
        reg.counter_add("allgatherv", "bytes", "ring", 7);
        assert!(datatype_report(&reg).is_none());
    }

    #[test]
    fn gate_failure_report_attaches_flight_dump() {
        // Run a cluster with noncontiguous traffic so the flight recorder
        // captures pack-pipeline events, then force a regression. The
        // last-run recorder set is process-global and sibling tests also
        // run clusters, so retry until our run is the one on record.
        use ncd_datatype::matrix_column_type;
        use ncd_simnet::Tag;
        let run_cluster = || {
            let mut cfg = MpiConfig::baseline();
            cfg.engine.block_size = 4096;
            Cluster::new(ClusterConfig::uniform(2)).run(move |rank| {
                let mut comm = Comm::new(rank, cfg.clone());
                let col = matrix_column_type(32, 32, 3).unwrap();
                let n = 32 * 32 * 24;
                if comm.rank() == 0 {
                    comm.send(&vec![1u8; n], &col, 32, 1, Tag(0));
                } else {
                    let mut dst = vec![0u8; n];
                    let row =
                        ncd_datatype::Datatype::contiguous(n, &ncd_datatype::Datatype::byte())
                            .unwrap();
                    comm.recv(&mut dst, &row, 1, Some(0), Tag(0));
                }
            });
        };
        let regs = vec![baseline::Regression {
            series: "latency".into(),
            x: "1024".into(),
            baseline: 10.0,
            current: 20.0,
            delta_pct: 100.0,
        }];
        let mut report = String::new();
        for _ in 0..10 {
            run_cluster();
            report = gate_failure_report("unit_test_gate_fig", &regs, 10.0);
            if report.contains("pack-block engine=single-context") {
                break;
            }
        }
        assert!(report.contains("baseline check FAILED"));
        assert!(
            report.contains("flight recorder: last events per rank"),
            "report missing dump:\n{report}"
        );
        assert!(
            report.contains("pack-block engine=single-context"),
            "dump missing pack events:\n{report}"
        );
        let on_disk = std::fs::read_to_string("target/flight/unit_test_gate_fig.flight.txt")
            .expect("flight dump written for artifact upload");
        assert!(on_disk.contains("pack-block engine=single-context"));
    }

    #[test]
    fn sched_report_formats_the_survey() {
        let mut stats = ncd_simnet::SchedStats {
            tasks: 4,
            backend: "fiber",
            resumes: 12,
            parks_blocked: 1,
            parks_polling: 8,
            deposit_wakes: 1,
            poll_promotions: 2,
            promoted_tasks: 8,
            depth_sum: 30,
            max_stack_bytes: 18_432,
            ..Default::default()
        };
        stats.ready_depth_log2[0] = 3;
        stats.ready_depth_log2[1] = 6;
        stats.ready_depth_log2[2] = 3;
        let table = sched_report(&stats).expect("non-empty survey");
        assert!(table.contains("=== event scheduler (fiber) ==="), "{table}");
        assert!(
            table.contains("ready-queue depth: 1:3  2-3:6  4-7:3"),
            "{table}"
        );
        assert!(table.contains("2.50"), "mean depth 30/12:\n{table}");
        assert!(table.contains("18432"), "{table}");
        assert!(
            sched_report(&ncd_simnet::SchedStats::default()).is_none(),
            "an empty survey renders nothing"
        );
    }

    #[test]
    fn bench_cli_parses_every_flag_form() {
        let to_args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        let cli = BenchCli::from_args(&to_args(&[
            "bench",
            "--smoke",
            "--report",
            "json",
            "--baseline",
            "check",
            "--tolerance",
            "5",
            "--ledger",
            "--compare",
            "latest",
            "--whatif",
        ]));
        assert_eq!(
            cli,
            BenchCli {
                smoke: true,
                report_json: true,
                baseline: BaselineMode::Check,
                tolerance_pct: 5.0,
                ledger: true,
                compare: Some("latest".to_string()),
                whatif: true,
                whatif_artifact: None,
            }
        );
        let eqs = BenchCli::from_args(&to_args(&[
            "bench",
            "--report=json",
            "--baseline=write",
            "--tolerance=2.5",
            "--compare=0123456789abcdef",
        ]));
        assert_eq!(
            eqs,
            BenchCli {
                smoke: false,
                report_json: true,
                baseline: BaselineMode::Write,
                tolerance_pct: 2.5,
                ledger: false,
                compare: Some("0123456789abcdef".to_string()),
                whatif: false,
                whatif_artifact: None,
            }
        );
        assert!(
            eqs.wants_observatory(),
            "--compare implies an observatory pass"
        );
        let none = BenchCli::from_args(&to_args(&["bench"]));
        assert_eq!(
            none,
            BenchCli {
                smoke: false,
                report_json: false,
                baseline: BaselineMode::Off,
                tolerance_pct: 10.0,
                ledger: false,
                compare: None,
                whatif: false,
                whatif_artifact: None,
            }
        );
        assert!(!none.wants_observatory());
    }

    #[test]
    fn report_to_ledger_persists_and_reloads_every_artifact() {
        let root = std::env::temp_dir().join(format!("ncd_obs_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::env::set_var("NCD_OBSERVATORY", &root);
        let run_once = || {
            let (t, _, metrics, map, history, traces) = time_phase_traced(
                ClusterConfig::uniform(4),
                MpiConfig::optimized(),
                2,
                |comm, _| {
                    let counts = vec![64usize; 4];
                    let send = vec![1u8; 64];
                    let mut recv = vec![0u8; 256];
                    comm.allgatherv(&send, &counts, &mut recv);
                },
            );
            let mut s = Series::new("latency");
            s.push("4", t.as_ns() as f64 / 1000.0);
            report_to_ledger(
                "unit_test_ledger",
                true,
                &[("procs".to_string(), "4".to_string())],
                &[s],
                Some(&metrics),
                Some(&map),
                Some(&history),
                Some(&traces),
                Some(&ncd_core::whatif_json(&ncd_core::CausalProfile {
                    baseline_ns: 1000,
                    outcomes: Vec::new(),
                })),
            )
            .expect("ledger write")
        };
        let m1 = run_once();
        let m2 = run_once();
        std::env::remove_var("NCD_OBSERVATORY");
        // Determinism: the same bench at the same knobs reproduces the
        // same content hash.
        assert_eq!(m1.run_id, m2.run_id);
        let dir = root.join("unit_test_ledger").join(&m1.run_id);
        let run = ncd_simnet::read_run(&dir).expect("read back");
        for artifact in [
            "series.json",
            "metrics.json",
            "comm.json",
            "history.json",
            "analysis.json",
            "decisions.json",
            "diagnosis.json",
            "whatif.json",
        ] {
            let text = run
                .artifact(artifact)
                .unwrap_or_else(|| panic!("{artifact} missing"));
            assert!(
                text.starts_with("{\"schema\":1,"),
                "{artifact} must lead with the schema: {}",
                &text[..text.len().min(40)]
            );
        }
        // And the differential engine re-loads it into an exact identity.
        let rec = ncd_core::RunRecord::from_ledger(&run).expect("parse artifacts");
        assert!(ncd_core::compare(&rec, &rec).is_empty());
        assert!(!rec.decisions.is_empty(), "decision audit persisted");
        assert!(rec.path.is_some() && rec.comm.is_some() && rec.diagnosis.is_some());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn history_phase_collects_epoch_series_and_artifacts() {
        let (_, stats, _metrics, map, history) = time_phase_history(
            ClusterConfig::uniform(4),
            MpiConfig::optimized(),
            3,
            |comm, _| {
                let counts = vec![64usize; 4];
                let send = vec![1u8; 64];
                let mut recv = vec![0u8; 256];
                comm.allgatherv(&send, &counts, &mut recv);
            },
        );
        assert_eq!(stats.len(), 4);
        assert_eq!(history.n, 4);
        // Warmup epochs were dropped: exactly the 3 measured calls.
        let pts = history.series("allgatherv/recursive_doubling");
        assert_eq!(pts.len(), 3, "labels: {:?}", history.series_labels());
        // The history totals agree with the comm map's.
        assert_eq!(
            pts.iter().map(|p| p.bytes).sum::<u64>(),
            map.total.total_bytes()
        );
        // A uniform steady series recurs perfectly.
        let rec = ncd_core::pattern_recurrence(&history);
        assert_eq!(rec[0].distinct, 1);
        assert_eq!(rec[0].stability, 1.0);

        report_with_history(
            "unit_test_history_fig",
            "n",
            "us",
            &[],
            None,
            Some(&map),
            Some(&history),
        );
        let json = std::fs::read_to_string("target/analysis/unit_test_history_fig.history.json")
            .expect("history artifact written");
        assert!(json.starts_with("{\"schema\":1,\"ranks\":4,"));
        assert!(json.contains("allgatherv/recursive_doubling"));
    }

    #[test]
    fn diagnosis_report_writes_artifacts() {
        use ncd_simnet::{diagnose, Tag};
        let traces = Cluster::new(ClusterConfig::uniform(2)).run(|rank| {
            rank.enable_tracing();
            if rank.rank() == 0 {
                rank.compute_flops(1_000_000);
                rank.send_bytes(1, Tag(0), vec![0u8; 64]);
            } else {
                let _ = rank.recv_bytes(Some(0), Tag(0));
            }
            rank.take_trace()
        });
        let d = diagnose(&traces);
        assert!(d.classified > SimTime::ZERO, "rank 1 must have waited");
        report_with_diagnosis(
            "unit_test_diag_fig",
            "n",
            "us",
            &[],
            None,
            None,
            None,
            Some(&d),
        );
        let json = std::fs::read_to_string("target/analysis/unit_test_diag_fig.diagnosis.json")
            .expect("diagnosis artifact written");
        assert!(json.starts_with("{\"schema\":1,"), "{json}");
        assert!(json.contains("\"pattern\":\"late-sender\""), "{json}");
    }

    #[test]
    fn aggregate_merges_all_ranks() {
        let (_, stats) = time_phase(
            ClusterConfig::uniform(3),
            MpiConfig::optimized(),
            1,
            |comm, _| comm.barrier(),
        );
        let total = aggregate(&stats);
        assert!(total.msgs_sent >= 3);
    }
}
