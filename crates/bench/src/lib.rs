//! Shared harness utilities for the figure-reproduction benchmarks.
//!
//! Every evaluation figure of the paper (Figures 12–17) has a bench target
//! in `benches/` that prints the same series the paper plots and writes a
//! CSV next to it. The helpers here standardize how a timed phase runs:
//! synchronize (barrier), reset the simulated clocks, run the operation
//! `reps` times, and report the **maximum per-rank simulated time divided
//! by reps** — the way MPI benchmarks report collective latency.

use ncd_core::{Comm, MpiConfig};
use ncd_simnet::{Cluster, ClusterConfig, SimTime, Stats};

/// Run `body` on a cluster and return the per-iteration completion time
/// (max over ranks), plus each rank's stats for breakdown reporting.
///
/// `body` receives the communicator and the iteration index; one warmup
/// iteration (index `usize::MAX`) runs before the clocks reset.
pub fn time_phase<F>(
    cluster_cfg: ClusterConfig,
    mpi_cfg: MpiConfig,
    reps: usize,
    body: F,
) -> (SimTime, Vec<Stats>)
where
    F: Fn(&mut Comm, usize) + Send + Sync,
{
    assert!(reps > 0);
    let out = Cluster::new(cluster_cfg).run(|rank| {
        let mut comm = Comm::new(rank, mpi_cfg.clone());
        body(&mut comm, usize::MAX); // warmup
        comm.barrier();
        comm.rank_mut().reset_clock();
        let _ = comm.rank_mut().take_stats();
        for it in 0..reps {
            body(&mut comm, it);
        }
        let t = comm.rank_ref().now();
        let stats = comm.rank_ref().stats().clone();
        (t, stats)
    });
    let tmax = out.iter().map(|(t, _)| *t).max().expect("nonempty cluster");
    let stats = out.into_iter().map(|(_, s)| s).collect();
    (SimTime::from_ns(tmax.as_ns() / reps as u64), stats)
}

/// Aggregate per-rank stats into one cluster-wide breakdown.
pub fn aggregate(stats: &[Stats]) -> Stats {
    let mut total = Stats::new();
    for s in stats {
        total.merge(s);
    }
    total
}

/// Percentage improvement of `new` over `old` (positive = new is faster).
pub fn improvement_pct(old: SimTime, new: SimTime) -> f64 {
    if old.as_ns() == 0 {
        return 0.0;
    }
    100.0 * (old.as_ns() as f64 - new.as_ns() as f64) / old.as_ns() as f64
}

/// A labelled series of (x, y) points for table/CSV output.
pub struct Series {
    pub label: String,
    pub points: Vec<(String, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: impl Into<String>, y: f64) {
        self.points.push((x.into(), y));
    }
}

/// Print an aligned table of several series sharing the x axis, and write
/// the same data as CSV under `target/figures/<name>.csv`.
pub fn report(name: &str, x_label: &str, y_label: &str, series: &[Series]) {
    println!("\n=== {name} ({y_label}) ===");
    print!("{:>14}", x_label);
    for s in series {
        print!("{:>22}", s.label);
    }
    println!();
    let npoints = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..npoints {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|(x, _)| x.clone()))
            .unwrap_or_default();
        print!("{x:>14}");
        for s in series {
            match s.points.get(i) {
                Some((_, y)) => print!("{y:>22.3}"),
                None => print!("{:>22}", "-"),
            }
        }
        println!();
    }

    // CSV alongside (best effort; benches may run in read-only setups).
    let dir = std::path::Path::new("target").join("figures");
    if std::fs::create_dir_all(&dir).is_ok() {
        let mut csv = String::new();
        csv.push_str(x_label);
        for s in series {
            csv.push(',');
            csv.push_str(&s.label);
        }
        csv.push('\n');
        for i in 0..npoints {
            let x = series
                .iter()
                .find_map(|s| s.points.get(i).map(|(x, _)| x.clone()))
                .unwrap_or_default();
            csv.push_str(&x);
            for s in series {
                csv.push(',');
                if let Some((_, y)) = s.points.get(i) {
                    csv.push_str(&format!("{y}"));
                }
            }
            csv.push('\n');
        }
        let _ = std::fs::write(dir.join(format!("{name}.csv")), csv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncd_simnet::Tag;

    #[test]
    fn time_phase_measures_per_iteration() {
        let ping = |comm: &mut Comm, _it: usize| {
            if comm.rank() == 0 {
                comm.rank_mut().send_bytes(1, Tag(0), vec![0; 1200]);
            } else {
                let _ = comm.rank_mut().recv_bytes(Some(0), Tag(0));
            }
        };
        let (t1, _) = time_phase(ClusterConfig::uniform(2), MpiConfig::optimized(), 1, ping);
        let (t4, _) = time_phase(ClusterConfig::uniform(2), MpiConfig::optimized(), 4, ping);
        // Per-iteration time should be roughly rep-count independent.
        let ratio = t1.as_ns() as f64 / t4.as_ns() as f64;
        assert!((0.3..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn improvement_pct_signs() {
        assert_eq!(improvement_pct(SimTime(100), SimTime(50)), 50.0);
        assert_eq!(improvement_pct(SimTime(100), SimTime(100)), 0.0);
        assert!(improvement_pct(SimTime(50), SimTime(100)) < 0.0);
        assert_eq!(improvement_pct(SimTime(0), SimTime(10)), 0.0);
    }

    #[test]
    fn series_and_report_do_not_panic() {
        let mut s = Series::new("test");
        s.push("1", 2.0);
        s.push("2", 4.0);
        report("unit_test_fig", "x", "y", &[s]);
    }

    #[test]
    fn aggregate_merges_all_ranks() {
        let (_, stats) = time_phase(
            ClusterConfig::uniform(3),
            MpiConfig::optimized(),
            1,
            |comm, _| comm.barrier(),
        );
        let total = aggregate(&stats);
        assert!(total.msgs_sent >= 3);
    }
}
