//! Benchmark baseline store and regression gate.
//!
//! The simulation is deterministic (seeded jitter, logical clocks), so a
//! bench series is exactly reproducible — which makes regression checking
//! trivial and byte-stable: `--baseline write` snapshots every gated
//! series to `benches/baselines/<name>.<smoke|full>.json`, and
//! `--baseline check` re-runs the bench and fails with a readable diff
//! table when any point got slower than the committed snapshot by more
//! than the tolerance (default 10%, `--tolerance <pct>` or
//! `NCD_BASELINE_TOL`). The tolerance absorbs *intentional* cost-model
//! retuning; a change that regresses a schedule or datatype path shows up
//! as an exact, explainable delta.
//!
//! Only lower-is-better series (latencies) should be gated — benches pass
//! those explicitly to [`crate::baseline_gate`] and keep derived
//! higher-is-better series (improvement %) out of the snapshot.

use std::path::{Path, PathBuf};

use crate::Series;

/// Exit code for `--baseline check` when no snapshot is committed, kept
/// distinct from `1` (an actual regression) so CI logs are unambiguous
/// about *why* the gate failed.
pub const EXIT_MISSING_BASELINE: i32 = 3;

/// What [`crate::baseline_gate`] should do, from `--baseline write|check`
/// (or `NCD_BASELINE=write|check`). Unrecognized values abort rather than
/// silently skipping the gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineMode {
    /// No baseline handling (the default).
    Off,
    /// Snapshot the gated series to the baseline store.
    Write,
    /// Compare against the stored snapshot; exit nonzero on regression.
    Check,
}

/// Parse the baseline mode from an explicit argument list + env value
/// (separated from the process globals for testability).
pub fn mode_from(args: &[String], env: Option<&str>) -> BaselineMode {
    let mut found: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(v) = a.strip_prefix("--baseline=") {
            found = Some(v);
        } else if a == "--baseline" {
            found = it.next().map(String::as_str);
        }
    }
    match found.or(env) {
        None => BaselineMode::Off,
        Some("write") => BaselineMode::Write,
        Some("check") => BaselineMode::Check,
        Some(other) => panic!("--baseline must be 'write' or 'check', got {other:?}"),
    }
}

/// The baseline mode requested for this process.
pub fn baseline_mode() -> BaselineMode {
    let args: Vec<String> = std::env::args().collect();
    let env = std::env::var("NCD_BASELINE").ok();
    mode_from(&args, env.as_deref())
}

/// Relative tolerance in percent before a slower point counts as a
/// regression (`--tolerance <pct>`, `--tolerance=<pct>`, or
/// `NCD_BASELINE_TOL`; default 10).
pub fn tolerance_pct() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    let mut found: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(v) = a.strip_prefix("--tolerance=") {
            found = Some(v.to_string());
        } else if a == "--tolerance" {
            found = it.next().cloned();
        }
    }
    let found = found.or_else(|| std::env::var("NCD_BASELINE_TOL").ok());
    match found {
        None => 10.0,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("--tolerance must be a number, got {v:?}")),
    }
}

/// Directory the snapshots are committed under (inside the bench crate, so
/// `check` compares against the repository state, not a build artifact).
pub fn baseline_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/benches/baselines"))
}

/// Snapshot path for a bench: smoke and full runs measure different
/// problem sizes, so they get separate files.
pub fn baseline_path(name: &str, smoke: bool) -> PathBuf {
    let mode = if smoke { "smoke" } else { "full" };
    baseline_dir().join(format!("{name}.{mode}.json"))
}

/// The cargo bench target this process was built from: the file stem of
/// `argv[0]` with the trailing `-<metadata hash>` cargo appends stripped.
/// Used to print copy-pasteable `cargo bench` commands in gate messages.
pub fn bench_target() -> Option<String> {
    target_from(&std::env::args().next()?)
}

/// [`bench_target`] over an explicit `argv[0]`, for tests.
pub fn target_from(argv0: &str) -> Option<String> {
    let stem = Path::new(argv0).file_stem()?.to_str()?;
    Some(match stem.rsplit_once('-') {
        Some((base, hash))
            if !base.is_empty()
                && hash.len() == 16
                && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            base.to_string()
        }
        _ => stem.to_string(),
    })
}

/// The message `--baseline check` prints when the committed snapshot does
/// not exist: names the expected path and the exact write command, so the
/// fix is copy-paste instead of archaeology.
pub fn missing_snapshot_message(
    name: &str,
    path: &Path,
    target: Option<&str>,
    smoke: bool,
    err: &str,
) -> String {
    let target = target.unwrap_or("<bench target>");
    let smoke_flag = if smoke { "--smoke " } else { "" };
    format!(
        "baseline check FAILED for {name}: no committed snapshot ({err})\n\
         expected path: {}\n\
         write it with: cargo bench -p ncd-bench --bench {target} -- {smoke_flag}--baseline write\n\
         then commit the snapshot (exit code {EXIT_MISSING_BASELINE} = missing baseline; 1 = regression)\n",
        path.display()
    )
}

/// Serialize series to the byte-stable snapshot format (same hand-rolled
/// JSON style as the simnet exports; deterministic input ⇒ identical
/// bytes on every write). Leads with the shared
/// [`ncd_simnet::SCHEMA_VERSION`] like every export in the workspace.
pub fn snapshot_json(name: &str, smoke: bool, series: &[Series]) -> String {
    let esc = ncd_simnet::export::json_escape;
    let mut out = format!(
        "{{\"schema\":{},\"name\":\"{}\",\"mode\":\"{}\",\"series\":[",
        ncd_simnet::SCHEMA_VERSION,
        esc(name),
        if smoke { "smoke" } else { "full" }
    );
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"label\":\"{}\",\"points\":[", esc(&s.label)));
        for (j, (x, y)) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[\"{}\",{y}]", esc(x)));
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Parse a snapshot produced by [`snapshot_json`] back into series.
/// Panics with a position on malformed input (a corrupted baseline file
/// should fail loudly, not silently pass the gate).
pub fn parse_snapshot(text: &str) -> Vec<Series> {
    let mut p = Scanner {
        s: text.as_bytes(),
        pos: 0,
    };
    p.expect_str("{\"schema\":");
    let _ = p.number();
    p.expect_str(",\"name\":");
    let _ = p.string();
    p.expect_str(",\"mode\":");
    let _ = p.string();
    p.expect_str(",\"series\":[");
    let mut series = Vec::new();
    if p.peek() != b']' {
        loop {
            p.expect_str("{\"label\":");
            let label = p.string();
            p.expect_str(",\"points\":[");
            let mut s = Series::new(label);
            if p.peek() != b']' {
                loop {
                    p.expect(b'[');
                    let x = p.string();
                    p.expect(b',');
                    let y = p.number();
                    p.expect(b']');
                    s.push(x, y);
                    match p.bump() {
                        b',' => continue,
                        b']' => break,
                        c => panic!("expected ',' or ']' got '{}' at {}", c as char, p.pos),
                    }
                }
            } else {
                p.bump();
            }
            p.expect(b'}');
            series.push(s);
            match p.bump() {
                b',' => continue,
                b']' => break,
                c => panic!("expected ',' or ']' got '{}' at {}", c as char, p.pos),
            }
        }
    } else {
        p.bump();
    }
    p.expect(b'}');
    series
}

/// Fixed-grammar scanner for the snapshot format: the writer is ours and
/// byte-stable, so this only needs to read exactly what
/// [`snapshot_json`] emits (plus JSON string escapes).
struct Scanner<'a> {
    s: &'a [u8],
    pos: usize,
}

impl Scanner<'_> {
    fn peek(&self) -> u8 {
        assert!(self.pos < self.s.len(), "unexpected end of baseline file");
        self.s[self.pos]
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn expect(&mut self, c: u8) {
        let got = self.bump();
        assert_eq!(
            got as char,
            c as char,
            "baseline parse error at byte {}",
            self.pos - 1
        );
    }

    fn expect_str(&mut self, s: &str) {
        for &c in s.as_bytes() {
            self.expect(c);
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.bump() {
                b'"' => return out,
                b'\\' => match self.bump() {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = (self.bump() as char)
                                .to_digit(16)
                                .expect("hex digit in \\u escape");
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).expect("valid scalar"));
                    }
                    c => panic!("bad escape '\\{}' at {}", c as char, self.pos),
                },
                c => out.push(c as char),
            }
        }
    }

    fn number(&mut self) -> f64 {
        let start = self.pos;
        while self.pos < self.s.len()
            && (self.s[self.pos].is_ascii_digit() || b"-+.eE".contains(&self.s[self.pos]))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.pos]).expect("ascii number");
        text.parse()
            .unwrap_or_else(|_| panic!("bad number '{text}' at {start}"))
    }
}

/// One point that moved beyond tolerance (or disappeared/appeared).
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    pub series: String,
    pub x: String,
    pub baseline: f64,
    pub current: f64,
    /// Percent change relative to the baseline (positive = slower). NaN
    /// for shape mismatches (missing series/point).
    pub delta_pct: f64,
}

/// Compare current series against a baseline (both lower-is-better).
/// Returns every regression: points slower than `baseline * (1 + tol%)`,
/// plus any shape mismatch (series or points missing on either side) —
/// a renamed or dropped series must not silently pass the gate.
/// Faster-than-baseline points are *not* regressions.
pub fn check_series(baseline: &[Series], current: &[Series], tol_pct: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.label == b.label) else {
            out.push(Regression {
                series: b.label.clone(),
                x: "<series missing from current run>".to_string(),
                baseline: f64::NAN,
                current: f64::NAN,
                delta_pct: f64::NAN,
            });
            continue;
        };
        for (x, by) in &b.points {
            let Some((_, cy)) = c.points.iter().find(|(cx, _)| cx == x) else {
                out.push(Regression {
                    series: b.label.clone(),
                    x: format!("{x} <point missing from current run>"),
                    baseline: *by,
                    current: f64::NAN,
                    delta_pct: f64::NAN,
                });
                continue;
            };
            if *cy > by * (1.0 + tol_pct / 100.0) {
                out.push(Regression {
                    series: b.label.clone(),
                    x: x.clone(),
                    baseline: *by,
                    current: *cy,
                    delta_pct: 100.0 * (cy - by) / by,
                });
            }
        }
        for (x, _) in &c.points {
            if !b.points.iter().any(|(bx, _)| bx == x) {
                out.push(Regression {
                    series: b.label.clone(),
                    x: format!("{x} <point not in baseline; re-run --baseline write>"),
                    baseline: f64::NAN,
                    current: f64::NAN,
                    delta_pct: f64::NAN,
                });
            }
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.label == c.label) {
            out.push(Regression {
                series: c.label.clone(),
                x: "<series not in baseline; re-run --baseline write>".to_string(),
                baseline: f64::NAN,
                current: f64::NAN,
                delta_pct: f64::NAN,
            });
        }
    }
    out
}

/// Render regressions as the diff table the gate prints on failure.
pub fn render_regressions(name: &str, regs: &[Regression], tol_pct: f64) -> String {
    let mut out = format!(
        "baseline check FAILED for {name} ({} regression(s), tolerance {tol_pct}%):\n",
        regs.len()
    );
    out.push_str(&format!(
        "{:<28} {:<44} {:>12} {:>12} {:>8}\n",
        "series", "x", "baseline", "current", "delta"
    ));
    for r in regs {
        let fmt = |v: f64| {
            if v.is_nan() {
                "-".to_string()
            } else {
                format!("{v:.3}")
            }
        };
        let delta = if r.delta_pct.is_nan() {
            "-".to_string()
        } else {
            format!("+{:.1}%", r.delta_pct)
        };
        out.push_str(&format!(
            "{:<28} {:<44} {:>12} {:>12} {:>8}\n",
            r.series,
            r.x,
            fmt(r.baseline),
            fmt(r.current),
            delta,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(label: &str, pts: &[(&str, f64)]) -> Series {
        let mut s = Series::new(label);
        for (x, y) in pts {
            s.push(*x, *y);
        }
        s
    }

    #[test]
    fn mode_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(mode_from(&args(&["bench"]), None), BaselineMode::Off);
        assert_eq!(
            mode_from(&args(&["bench", "--baseline", "write"]), None),
            BaselineMode::Write
        );
        assert_eq!(
            mode_from(&args(&["bench", "--baseline=check"]), None),
            BaselineMode::Check
        );
        assert_eq!(
            mode_from(&args(&["bench"]), Some("check")),
            BaselineMode::Check
        );
        // Command line wins over the environment.
        assert_eq!(
            mode_from(&args(&["bench", "--baseline=write"]), Some("check")),
            BaselineMode::Write
        );
    }

    #[test]
    #[should_panic(expected = "must be 'write' or 'check'")]
    fn bad_mode_panics() {
        mode_from(
            &["bench".to_string(), "--baseline=frobnicate".to_string()],
            None,
        );
    }

    #[test]
    fn snapshot_round_trips() {
        let s = vec![
            series("ring", &[("2", 10.5), ("4", 21.25)]),
            series("rd \"x\"", &[("8", 3.0)]),
        ];
        let json = snapshot_json("fig14", true, &s);
        assert!(json.starts_with("{\"schema\":1,\"name\":\"fig14\",\"mode\":\"smoke\""));
        let back = parse_snapshot(&json);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].label, "ring");
        assert_eq!(
            back[0].points,
            vec![("2".to_string(), 10.5), ("4".to_string(), 21.25)]
        );
        assert_eq!(back[1].label, "rd \"x\"");
        assert_eq!(back[1].points, vec![("8".to_string(), 3.0)]);
        // Byte stability: re-serializing the parse gives identical bytes.
        assert_eq!(snapshot_json("fig14", true, &back), json);
    }

    #[test]
    fn identical_series_pass_check() {
        let base = vec![series("a", &[("1", 100.0), ("2", 200.0)])];
        let cur = vec![series("a", &[("1", 100.0), ("2", 200.0)])];
        assert!(check_series(&base, &cur, 10.0).is_empty());
    }

    #[test]
    fn within_tolerance_passes_beyond_fails() {
        let base = vec![series("a", &[("1", 100.0)])];
        let slower_ok = vec![series("a", &[("1", 109.0)])];
        assert!(check_series(&base, &slower_ok, 10.0).is_empty());

        // Synthetically slowed series: +50% must fail the 10% gate.
        let slowed = vec![series("a", &[("1", 150.0)])];
        let regs = check_series(&base, &slowed, 10.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].x, "1");
        assert!((regs[0].delta_pct - 50.0).abs() < 1e-9);
        let table = render_regressions("fig", &regs, 10.0);
        assert!(table.contains("FAILED"), "{table}");
        assert!(table.contains("+50.0%"), "{table}");
    }

    #[test]
    fn improvements_are_not_regressions() {
        let base = vec![series("a", &[("1", 100.0)])];
        let faster = vec![series("a", &[("1", 10.0)])];
        assert!(check_series(&base, &faster, 10.0).is_empty());
    }

    #[test]
    fn shape_mismatches_fail_the_gate() {
        let base = vec![series("a", &[("1", 1.0), ("2", 2.0)])];
        // Missing series.
        assert_eq!(check_series(&base, &[], 10.0).len(), 1);
        // Missing point.
        let cur = vec![series("a", &[("1", 1.0)])];
        assert_eq!(check_series(&base, &cur, 10.0).len(), 1);
        // Extra point not covered by the baseline.
        let cur = vec![series("a", &[("1", 1.0), ("2", 2.0), ("3", 3.0)])];
        let regs = check_series(&base, &cur, 10.0);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].x.contains("not in baseline"));
        // Extra series not covered by the baseline.
        let cur = vec![
            series("a", &[("1", 1.0), ("2", 2.0)]),
            series("b", &[("1", 1.0)]),
        ];
        assert_eq!(check_series(&base, &cur, 10.0).len(), 1);
        // Renders without panicking even with NaN cells.
        let _ = render_regressions("fig", &check_series(&base, &[], 10.0), 10.0);
    }

    #[test]
    fn target_from_strips_cargo_hash() {
        assert_eq!(
            target_from("target/release/deps/fig14_allgatherv-0123456789abcdef").as_deref(),
            Some("fig14_allgatherv")
        );
        // Non-hash suffixes stay (ext_amr_skew has a real dash-less stem;
        // a short or non-hex tail is part of the name).
        assert_eq!(
            target_from("deps/ext_amr_skew-12ab").as_deref(),
            Some("ext_amr_skew-12ab")
        );
        assert_eq!(
            target_from("fig15_alltoallw").as_deref(),
            Some("fig15_alltoallw")
        );
    }

    #[test]
    fn missing_snapshot_message_names_path_and_command() {
        let msg = missing_snapshot_message(
            "fig14a_allgatherv_size",
            Path::new("/repo/benches/baselines/fig14a_allgatherv_size.smoke.json"),
            Some("fig14_allgatherv"),
            true,
            "No such file or directory",
        );
        assert!(msg
            .contains("expected path: /repo/benches/baselines/fig14a_allgatherv_size.smoke.json"));
        assert!(msg.contains(
            "cargo bench -p ncd-bench --bench fig14_allgatherv -- --smoke --baseline write"
        ));
        assert!(msg.contains("exit code 3"));
        // Full mode drops the --smoke flag.
        let full = missing_snapshot_message("f", Path::new("p"), Some("f"), false, "e");
        assert!(full.contains("-- --baseline write"), "{full}");
    }

    #[test]
    fn baseline_path_separates_smoke_and_full() {
        let smoke = baseline_path("fig14_allgatherv", true);
        let full = baseline_path("fig14_allgatherv", false);
        assert!(smoke.ends_with("benches/baselines/fig14_allgatherv.smoke.json"));
        assert!(full.ends_with("benches/baselines/fig14_allgatherv.full.json"));
    }
}
