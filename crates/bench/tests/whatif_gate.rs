//! Causal-verification gate for the what-if profiler on the AMR-skew
//! diagnosis workload (the `ext_amr_skew` bench's phase (c)/(d), via the
//! shared [`ncd_bench::workloads`] definition):
//!
//! * the planner must target the diagnosed outlier rank and the flagged
//!   ring misselection, and append a control;
//! * fixing the blamed rank's compute must measure the dominant gain,
//!   consistent with the finding's severity (positive, bounded by it, and
//!   a large share of the makespan);
//! * flipping ring -> recursive doubling must reproduce the known win;
//! * the irrelevant control intervention must measure ~0;
//! * every replay must be tie-break-seed invariant (spread 0), and the
//!   serialized profile must match the committed golden byte-for-byte.

use ncd_bench::{amr_diag_loop, amr_diag_workload, AMR_DIAG_OUTLIER, WHATIF_SEEDS};
use ncd_core::{
    causal_profile, decisions_from_trace, detect_misselections, plan_experiments, whatif_json,
    CausalProfile, Comm, MpiConfig,
};
use ncd_simnet::{diagnose, merge_comm_maps, Cluster, ClusterConfig, Diagnosis};

/// The `--smoke` machine size of `ext_amr_skew` — what CI diagnoses and
/// what the committed golden pins.
const NRANKS: usize = 16;

/// Trace the diagnosis workload, plan from its findings and audit, and
/// replay the causal profile — the exact pipeline `ext_amr_skew --whatif`
/// runs.
fn profile_amr_run() -> (Diagnosis, CausalProfile) {
    let cluster = ClusterConfig::paper_testbed(NRANKS);
    let mpi = MpiConfig::baseline();
    let cfg = mpi.clone();
    let out = Cluster::new(cluster.clone()).run(move |rank| {
        rank.enable_tracing();
        rank.enable_comm_map();
        let mut comm = Comm::new(rank, cfg.clone());
        comm.barrier();
        comm.rank_mut().reset_clock();
        let _ = comm.rank_mut().take_comm_map(); // drop warmup traffic
        amr_diag_loop(&mut comm);
        let map = comm.rank_mut().take_comm_map();
        let trace = comm.rank_mut().take_trace();
        (trace, map)
    });
    let (traces, maps): (Vec<_>, Vec<_>) = out.into_iter().unzip();
    let map = merge_comm_maps(&maps);
    let diag = diagnose(&traces);
    let decisions = decisions_from_trace(&traces[0]);
    let audit = detect_misselections(&decisions, Some(&map), &cluster.cost, &mpi);
    let plan = plan_experiments(&diag, &decisions, &audit, 3);
    let profile = causal_profile(&cluster, &mpi, &plan, WHATIF_SEEDS, amr_diag_workload);
    (diag, profile)
}

const GOLDEN: &str = include_str!("golden/whatif.json");

/// Regenerate the golden file after an intentional format or cost-model
/// change: `cargo test -p ncd-bench --test whatif_gate -- --ignored`
#[test]
#[ignore = "writes the golden file; run explicitly after format changes"]
fn regenerate_golden() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/whatif.json");
    let (_, profile) = profile_amr_run();
    std::fs::write(path, whatif_json(&profile) + "\n").expect("write golden");
}

#[test]
fn whatif_verifies_the_outlier_blame_causally() {
    let (mut diag, profile) = profile_amr_run();
    assert!(profile.baseline_ns > 0);
    let by_id = |id: &str| {
        profile
            .outcomes
            .iter()
            .find(|o| o.experiment.id == id)
            .unwrap_or_else(|| panic!("{id} missing from the plan"))
    };

    // Determinism first: the event scheduler's tie order must not move
    // any measurement, so every outcome is fully confident.
    for o in &profile.outcomes {
        assert_eq!(o.spread_ns, 0, "{} is seed-sensitive", o.experiment.id);
        assert_eq!(o.confidence, 1.0, "{}", o.experiment.id);
    }

    // The diagnosis blames the outlier; fixing exactly that rank's
    // compute must be the best intervention the profiler measured.
    let fix = by_id(&format!("compute-half-rank{AMR_DIAG_OUTLIER}"));
    assert_eq!(
        profile.ranked()[0].experiment.id,
        fix.experiment.id,
        "the fix to the blamed rank must rank first"
    );
    // Consistent with the finding's severity: positive, a dominant share
    // of the makespan (the outlier owns >50% of the allgatherv wait, and
    // the intervention removes half its compute), and never more than
    // the severity the finding claims.
    let severity = diag
        .findings
        .iter()
        .filter(|f| f.blamed == AMR_DIAG_OUTLIER)
        .map(|f| f.severity.as_ns())
        .max()
        .expect("a finding blames the outlier");
    assert!(fix.gain_ns > 0, "gain {}", fix.gain_ns);
    assert!(
        fix.gain_pct > 25.0,
        "fixing the blamed rank must dominate the makespan, got {:.2}%",
        fix.gain_pct
    );
    assert!(
        (fix.gain_ns as u64) <= severity,
        "measured gain {} cannot exceed the claimed severity {severity}",
        fix.gain_ns
    );

    // The audit flagged ring over this outlier set; the pinned flip must
    // reproduce the known recursive-doubling win.
    let flip = by_id("pin-allgatherv-recursive_doubling");
    assert!(
        flip.gain_ns > 0,
        "ring -> rd must win, got {}",
        flip.gain_ns
    );

    // The control touches a rank no targeted finding blames: its gain
    // must be noise-level (within 0.1% of the baseline makespan).
    let control = profile
        .outcomes
        .iter()
        .find(|o| o.experiment.id.starts_with("control-pack-rank"))
        .expect("the planner always appends a control");
    assert!(
        control.gain_ns.unsigned_abs() * 1000 <= profile.baseline_ns,
        "control gain {} is not ~0 of baseline {}",
        control.gain_ns,
        profile.baseline_ns
    );

    // The measured gains flow back into the findings as verifications.
    profile.apply_verified_gains(&mut diag);
    let top = &diag.findings[0];
    assert_eq!(top.blamed, AMR_DIAG_OUTLIER);
    assert_eq!(top.verified_gain, Some(fix.gain_ns));
    assert!(
        ncd_simnet::diagnosis_json(&diag).contains("\"verified_gain_ns\":"),
        "verified gains must serialize"
    );

    // Byte-stable contract: the committed golden pins every measured
    // number; any drift is a behaviour change to be reviewed, not noise.
    assert_eq!(
        whatif_json(&profile),
        GOLDEN.trim_end(),
        "whatif_json diverged from tests/golden/whatif.json; \
         if the change is intentional, regenerate the golden file"
    );
}
