//! Property tests of the observatory pipeline: for arbitrary nonuniform
//! alltoallw / scatterv workloads, a run ledgered through
//! [`ncd_bench::report_to_ledger`] and re-loaded compares **observationally
//! identical to itself** — `compare(run, run)` must be empty — and
//! re-ledgering the unchanged run is idempotent (same content-hash id).
//!
//! This is the contract the whole differential layer leans on: any
//! nonempty diff must be a genuine behaviour change, never parse noise,
//! float formatting, or unstable ordering.

use ncd_bench::{report_to_ledger, time_phase_traced};
use ncd_core::{compare, Comm, MpiConfig, RunRecord, WPeer};
use ncd_datatype::Datatype;
use ncd_simnet::{ledger_root, read_run, ClusterConfig};
use proptest::prelude::*;

/// Point every ledger write of this test process at one private root, so
/// parallel test threads cannot race each other's `NCD_OBSERVATORY`.
fn init_obs_root() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let dir =
            std::env::temp_dir().join(format!("ncd-observatory-props-{}", std::process::id()));
        std::env::set_var("NCD_OBSERVATORY", &dir);
    });
}

/// Ledger one traced run under `bench` with the given knobs and re-load
/// it the way the differential engine does.
#[allow(clippy::type_complexity)]
fn ledger_and_reload(
    bench: &str,
    knobs: &[(String, String)],
    traced: (
        ncd_simnet::SimTime,
        Vec<ncd_simnet::Stats>,
        ncd_simnet::MetricsRegistry,
        ncd_simnet::ClusterCommMap,
        ncd_simnet::History,
        Vec<Vec<ncd_simnet::TraceEvent>>,
    ),
) -> (String, RunRecord) {
    let (_, _, metrics, map, history, traces) = traced;
    let mut series = ncd_bench::Series::new("latency-usec");
    series.push("run", 1.0);
    let manifest = report_to_ledger(
        bench,
        true,
        knobs,
        &[series],
        Some(&metrics),
        Some(&map),
        Some(&history),
        Some(&traces),
        None,
    )
    .expect("ledger the run");
    let dir = ledger_root().join(bench).join(&manifest.run_id);
    let run = read_run(&dir).expect("re-read the ledgered run");
    let rec = RunRecord::from_ledger(&run).expect("parse the artifacts");
    (manifest.run_id, rec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary nonuniform alltoallw traffic (including zero-volume
    /// peers, the three-bin schedule's special case): self-compare is
    /// identity and the run id is reproducible.
    #[test]
    fn alltoallw_run_self_compare_is_identity(
        n in 2usize..5,
        vols in proptest::collection::vec(0usize..32, 16),
    ) {
        init_obs_root();
        let vol = move |src: usize, dst: usize| vols[(src * n + dst) % 16];
        let body = move |comm: &mut Comm, _it: usize| {
            let me = comm.rank();
            let send_doubles: Vec<usize> = (0..n).map(|j| vol(me, j)).collect();
            let recv_doubles: Vec<usize> = (0..n).map(|j| vol(j, me)).collect();
            let mk_peers = |doubles: &[usize]| {
                let mut off = 0;
                doubles
                    .iter()
                    .map(|&d| {
                        let p = WPeer::new(
                            off,
                            1,
                            Datatype::contiguous(d, &Datatype::double()).expect("peer type"),
                        );
                        off += d * 8;
                        p
                    })
                    .collect::<Vec<_>>()
            };
            let sends = mk_peers(&send_doubles);
            let recvs = mk_peers(&recv_doubles);
            let sendbuf = vec![me as u8; send_doubles.iter().sum::<usize>() * 8];
            let mut recvbuf = vec![0u8; recv_doubles.iter().sum::<usize>() * 8];
            comm.alltoallw(&sendbuf, &sends, &mut recvbuf, &recvs);
        };
        let knobs = vec![("ranks".to_string(), n.to_string())];
        let run = || {
            ledger_and_reload(
                "prop_alltoallw",
                &knobs,
                time_phase_traced(ClusterConfig::uniform(n), MpiConfig::optimized(), 2, &body),
            )
        };
        let (id1, rec1) = run();
        let (id2, rec2) = run();
        prop_assert_eq!(&id1, &id2, "re-ledgering an unchanged run must be idempotent");
        let diff = compare(&rec1, &rec2);
        prop_assert!(
            diff.is_empty(),
            "self-compare must be observationally identical: {:?}",
            diff
        );
    }

    /// Arbitrary scatterv part sizes (root hands each rank a different,
    /// possibly empty slice): self-compare is identity.
    #[test]
    fn scatterv_run_self_compare_is_identity(
        parts in proptest::collection::vec(0usize..100, 2..7),
        root_pick in 0usize..6,
    ) {
        init_obs_root();
        let n = parts.len();
        let root = root_pick % n;
        let parts_by_rank: Vec<Vec<u8>> = parts
            .iter()
            .enumerate()
            .map(|(r, &len)| (0..len).map(|i| ((r * 37 + i) % 251) as u8).collect())
            .collect();
        let expect = parts_by_rank.clone();
        let body = move |comm: &mut Comm, _it: usize| {
            let me = comm.rank();
            let got = if me == root {
                comm.scatterv(Some(&parts_by_rank), root)
            } else {
                comm.scatterv(None, root)
            };
            assert_eq!(got, expect[me], "scatterv must deliver rank {me}'s part");
        };
        let knobs = vec![
            ("ranks".to_string(), n.to_string()),
            ("root".to_string(), root.to_string()),
        ];
        let run = || {
            ledger_and_reload(
                "prop_scatterv",
                &knobs,
                time_phase_traced(ClusterConfig::uniform(n), MpiConfig::optimized(), 2, &body),
            )
        };
        let (id1, rec1) = run();
        let (id2, rec2) = run();
        prop_assert_eq!(&id1, &id2, "re-ledgering an unchanged run must be idempotent");
        let diff = compare(&rec1, &rec2);
        prop_assert!(
            diff.is_empty(),
            "self-compare must be observationally identical: {:?}",
            diff
        );
    }
}
