//! Differential proof for the event-driven scheduler: the same workloads
//! produce byte-identical observability artifacts under both backends.
//!
//! The event scheduler replaces one OS thread per rank with cooperatively
//! scheduled fibers, but simulated time, message matching, and every
//! recorded artifact are supposed to be functions of the *simulation*
//! alone, not of who runs it. These tests run the fig14 / fig15 /
//! ext_overlap workload shapes under `SchedBackend::Threads` and
//! `SchedBackend::Events` and assert the chrome trace export, the
//! communication matrix, and the wait-state diagnosis JSON agree byte for
//! byte — the refactor's correctness contract (ISSUE 9).

use ncd_bench::time_phase_traced;
use ncd_core::{Comm, MpiConfig, WPeer};
use ncd_datatype::Datatype;
use ncd_petsc::{DistributedArray, ScatterBackend, StencilKind};
use ncd_simnet::{
    chrome_trace_json, comm_matrix_json, diagnose, diagnosis_json, ClusterCommMap, ClusterConfig,
    SchedBackend, SimTime, TraceEvent,
};

/// Run `body` under one backend and collapse the observable artifacts to
/// comparable byte strings.
fn artifacts<F>(
    cfg: ClusterConfig,
    backend: SchedBackend,
    body: F,
) -> (SimTime, String, String, String)
where
    F: Fn(&mut Comm, usize) + Send + Sync,
{
    let (t, _, _, map, _, traces): (_, _, _, ClusterCommMap, _, Vec<Vec<TraceEvent>>) =
        time_phase_traced(cfg.with_backend(backend), MpiConfig::optimized(), 2, body);
    let trace = chrome_trace_json(&traces);
    let matrix = comm_matrix_json(&map);
    let diag = diagnosis_json(&diagnose(&traces));
    (t, trace, matrix, diag)
}

fn assert_backends_agree<F>(name: &str, cfg: ClusterConfig, body: F)
where
    F: Fn(&mut Comm, usize) + Send + Sync + Clone,
{
    let (te, trace_e, matrix_e, diag_e) =
        artifacts(cfg.clone(), SchedBackend::Events, body.clone());
    let (tt, trace_t, matrix_t, diag_t) = artifacts(cfg, SchedBackend::Threads, body);
    assert!(te > SimTime::ZERO, "{name}: workload did no simulated work");
    assert!(
        trace_e.matches("\"ph\"").count() > 10,
        "{name}: trace export is vacuously small"
    );
    assert_eq!(te, tt, "{name}: makespan differs across backends");
    assert_eq!(trace_e, trace_t, "{name}: chrome trace differs");
    assert_eq!(matrix_e, matrix_t, "{name}: comm matrix differs");
    assert_eq!(diag_e, diag_t, "{name}: diagnosis differs");
}

/// fig14's workload: allgatherv where rank 0 contributes a 32 KB outlier
/// and everyone else a single double.
#[test]
fn fig14_allgatherv_is_backend_invariant() {
    assert_backends_agree("fig14", ClusterConfig::uniform(16), |comm: &mut Comm, _| {
        let mut counts = vec![8usize; comm.size()];
        counts[0] = 4096 * 8;
        let me = comm.rank();
        let send = vec![me as u8; counts[me]];
        let mut recv = vec![0u8; counts.iter().sum()];
        comm.allgatherv(&send, &counts, &mut recv);
    });
}

/// fig15's workload: nearest-neighbour alltoallw ring exchange on the
/// heterogeneous paper testbed (the skew-sensitive case).
#[test]
fn fig15_alltoallw_is_backend_invariant() {
    assert_backends_agree(
        "fig15",
        ClusterConfig::paper_testbed(8),
        |comm: &mut Comm, _| {
            let me = comm.rank();
            let n = comm.size();
            let succ = (me + 1) % n;
            let pred = (me + n - 1) % n;
            let matrix = Datatype::contiguous(100, &Datatype::double()).expect("matrix type");
            let empty = Datatype::contiguous(0, &Datatype::double()).expect("empty");
            let mut sends: Vec<WPeer> = (0..n).map(|_| WPeer::new(0, 0, empty.clone())).collect();
            let mut recvs = sends.clone();
            sends[succ] = WPeer::new(0, 1, matrix.clone());
            recvs[pred] = WPeer::new(0, 1, matrix.clone());
            sends[pred] = WPeer::new(800, 1, matrix.clone());
            recvs[succ] = WPeer::new(800, 1, matrix.clone());
            let sendbuf = vec![me as u8; 1600];
            let mut recvbuf = vec![0u8; 1600];
            comm.alltoallw(&sendbuf, &sends, &mut recvbuf, &recvs);
        },
    );
}

/// ext_overlap's workload: split ghost exchange (begin / interior compute
/// / end) on a 2-D star-stencil DA — exercises petsc::scatter's
/// nonblocking path and compute interleaving.
#[test]
fn ext_overlap_scatter_is_backend_invariant() {
    assert_backends_agree(
        "ext_overlap",
        ClusterConfig::paper_testbed(4),
        |comm: &mut Comm, _| {
            let da = DistributedArray::new(comm, &[48, 48], 1, StencilKind::Star, 1);
            let mut g = da.create_global_vec();
            for (off, p) in da.owned_points().enumerate() {
                g.local_mut()[off] = (p[0] * 31 + p[1]) as f64;
            }
            let mut l = da.create_local_vec();
            let h = da.global_to_local_begin(comm, &g, &mut l, ScatterBackend::HandTuned);
            comm.rank_mut().compute_flops(1_000_000);
            da.global_to_local_end(comm, h, &mut l);
        },
    );
}
