//! Every byte-stable export in the workspace must lead with the shared
//! `SCHEMA_VERSION` from `ncd_simnet::export` — the observatory's
//! compatibility handshake. A consumer (the differential engine, CI
//! artifact tooling, a committed reference run) reads the version off the
//! first bytes before trusting the rest; a writer that forgets the
//! prefix, or bumps its own private version, breaks silently. This test
//! drives one real traced run through the ledger and asserts the prefix
//! on every artifact it persists, plus the writers the ledger does not
//! own (baseline snapshots, the differential export, the manifest).

use ncd_bench::{baseline, report_to_ledger, series_json, time_phase_traced, Series};
use ncd_core::{compare, diff_json, Comm, MpiConfig, RunRecord};
use ncd_simnet::{ledger_root, manifest_json, read_run, ClusterConfig, SCHEMA_VERSION};

fn schema_prefix() -> String {
    format!("{{\"schema\":{SCHEMA_VERSION},")
}

#[test]
fn every_byte_stable_export_leads_with_the_shared_schema_version() {
    let root = std::env::temp_dir().join(format!("ncd-schema-test-{}", std::process::id()));
    std::env::set_var("NCD_OBSERVATORY", &root);

    // One real run exercising a collective, so every artifact (series,
    // metrics, comm matrix, history, analysis, decisions, diagnosis) is
    // non-trivial.
    let (_, _, metrics, map, history, traces) = time_phase_traced(
        ClusterConfig::uniform(4),
        MpiConfig::optimized(),
        2,
        |comm: &mut Comm, _| {
            let counts = vec![64usize; comm.size()];
            let me = comm.rank();
            let send = vec![me as u8; counts[me]];
            let mut recv = vec![0u8; counts.iter().sum()];
            comm.allgatherv(&send, &counts, &mut recv);
        },
    );
    let mut s = Series::new("latency-usec");
    s.push("4", 1.0);
    let series = [s];
    let manifest = report_to_ledger(
        "schema_probe",
        true,
        &[("ranks".to_string(), "4".to_string())],
        &series,
        Some(&metrics),
        Some(&map),
        Some(&history),
        Some(&traces),
        Some(&ncd_core::whatif_json(&ncd_core::CausalProfile {
            baseline_ns: 1,
            outcomes: Vec::new(),
        })),
    )
    .expect("ledger the probe run");

    // Every persisted artifact, the manifest included, leads with the
    // shared version.
    let dir = ledger_root().join("schema_probe").join(&manifest.run_id);
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("run dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "json") {
            let text = std::fs::read_to_string(&path).expect("artifact");
            assert!(
                text.starts_with(&schema_prefix()),
                "{} must lead with {}, got: {}",
                path.display(),
                schema_prefix(),
                &text[..40.min(text.len())]
            );
            checked += 1;
        }
    }
    assert_eq!(
        checked,
        9,
        "expected manifest + 8 artifacts under {}",
        dir.display()
    );

    // Writers the ledger does not own.
    let direct = [
        ("series_json", series_json("schema_probe", true, &series)),
        (
            "snapshot_json",
            baseline::snapshot_json("schema_probe", true, &series),
        ),
        ("manifest_json", manifest_json(&manifest)),
        ("diff_json", {
            let run = read_run(&dir).expect("re-read run");
            let rec = RunRecord::from_ledger(&run).expect("parse run");
            diff_json(&compare(&rec, &rec))
        }),
    ];
    for (name, text) in direct {
        assert!(
            text.starts_with(&schema_prefix()),
            "{name} must lead with {}, got: {}",
            schema_prefix(),
            &text[..40.min(text.len())]
        );
    }
}
