//! Figure 15 — `MPI_Alltoallw` nearest-neighbour exchange under natural
//! skew.
//!
//! Processes form a logical ring; each exchanges a 10x10 matrix of doubles
//! with its successor and predecessor and nothing with anyone else. The
//! baseline round-robin schedule still performs a (zero-byte) exchange
//! with *every* rank — each a synchronization point that propagates skew —
//! while the optimized schedule exempts the zero bin entirely and
//! processes small messages first.
//!
//! The cluster model reproduces the paper's testbed heterogeneity (two
//! different 32-node clusters plus OS jitter), which §5.3 credits for the
//! skew: "we did not add any artificial skew to the benchmark".
//!
//! Paper result: ~50% improvement at 32 processes, >88% at 128.

use ncd_bench::{improvement_pct, report, time_phase, time_phase_traced, BenchCli, Series};
use ncd_core::{Comm, MpiConfig, WPeer};
use ncd_datatype::Datatype;
use ncd_simnet::{ClusterConfig, SimTime};

/// One ring exchange: each rank sends a 10x10 matrix of doubles (800 B)
/// to its ring successor and predecessor.
fn ring_exchange(comm: &mut Comm) {
    let me = comm.rank();
    let n = comm.size();
    let succ = (me + 1) % n;
    let pred = (me + n - 1) % n;
    let matrix = Datatype::contiguous(100, &Datatype::double()).expect("matrix type");
    let empty = Datatype::contiguous(0, &Datatype::double()).expect("empty");
    let mut sends: Vec<WPeer> = (0..n).map(|_| WPeer::new(0, 0, empty.clone())).collect();
    let mut recvs = sends.clone();
    sends[succ] = WPeer::new(0, 1, matrix.clone());
    recvs[pred] = WPeer::new(0, 1, matrix.clone());
    if n > 2 {
        sends[pred] = WPeer::new(800, 1, matrix.clone());
        recvs[succ] = WPeer::new(800, 1, matrix.clone());
    }
    let sendbuf = vec![me as u8; 1600];
    let mut recvbuf = vec![0u8; 1600];
    comm.alltoallw(&sendbuf, &sends, &mut recvbuf, &recvs);
}

fn ring_exchange_latency(nprocs: usize, cfg: MpiConfig) -> SimTime {
    let (t, _) = time_phase(ClusterConfig::paper_testbed(nprocs), cfg, 10, |comm, _| {
        ring_exchange(comm)
    });
    t
}

fn main() {
    // `--smoke` shrinks the sweep so CI can gate every push; smoke and
    // full baselines are stored separately.
    let cli = BenchCli::parse();
    let procs: &[usize] = if cli.smoke {
        &[2, 4, 8, 16]
    } else {
        &[2, 4, 8, 16, 32, 64, 128]
    };
    let mut base = Series::new("MVAPICH2-0.9.5");
    let mut new = Series::new("MVAPICH2-New");
    let mut imp = Series::new("improvement-%");
    for &n in procs {
        let tb = ring_exchange_latency(n, MpiConfig::baseline());
        let tn = ring_exchange_latency(n, MpiConfig::optimized());
        base.push(n.to_string(), tb.as_us());
        new.push(n.to_string(), tn.as_us());
        imp.push(n.to_string(), improvement_pct(tb, tn));
    }
    // Gate the raw latencies; improvement-% is higher-is-better and
    // derived from them.
    let series = [base, new, imp];
    cli.gate("fig15_alltoallw", &series[..2]);
    report("fig15_alltoallw", "processes", "latency (usec)", &series);

    // Observatory pass: one fully traced ring exchange under the
    // optimized schedule (a mid-size machine — tracing 128 heterogeneous
    // ranks adds nothing the differential needs), so skew regressions
    // show up with wait-state blame attached.
    if cli.wants_observatory() {
        let n = if cli.smoke { 16 } else { 32 };
        let (_, _, metrics, map, history, traces) = time_phase_traced(
            ClusterConfig::paper_testbed(n),
            MpiConfig::optimized(),
            10,
            |comm, _| ring_exchange(comm),
        );
        let knobs = vec![
            ("procs".to_string(), n.to_string()),
            ("matrix".to_string(), "10x10-doubles".to_string()),
            ("flavor".to_string(), "auto".to_string()),
        ];
        cli.observatory(
            "fig15_alltoallw",
            &knobs,
            &series,
            Some(&metrics),
            Some(&map),
            Some(&history),
            Some(&traces),
        );
    }
}
