//! Extension study (the paper's §7 future work): how adaptive-mesh load
//! imbalance interacts with the alltoallw schedule.
//!
//! A moving refinement hotspot gives a few ranks `2^(2·level)` times the
//! compute and boundary volume of the rest. We sweep the refinement depth
//! and the machine size; the round-robin schedule globalizes the hotspot's
//! delay through its zero-byte synchronizations, the binned schedule
//! confines it to the hotspot's neighbourhood.
//!
//! Every run also collects the communication map and the decision-audit
//! metrics (neither touches the simulated clock, so the gated latencies
//! are identical to an uninstrumented run): the depth-sweep report appends
//! the who-talks-to-whom heatmap and the algorithm-decision table, and
//! writes `target/analysis/ext_amr_depth.{comm.json,decisions.txt}` for
//! CI artifact upload.
//!
//! `--smoke` shrinks the machine and the sweeps for CI; the lower-is-better
//! latency series are gated against committed baselines with
//! `--baseline check`.

use ncd_bench::{improvement_pct, report, report_with_observability, BenchCli, Series};
use ncd_core::{Comm, MpiConfig, WPeer};
use ncd_datatype::Datatype;
use ncd_simnet::{
    merge_comm_maps, Cluster, ClusterCommMap, ClusterConfig, MetricsRegistry, SimTime,
};

const STEPS: usize = 10;
const BASE_CELLS: u64 = 2_000;

fn level(rank: usize, spot: usize, n: usize, depth: u32) -> u32 {
    let d = rank.abs_diff(spot).min(n - rank.abs_diff(spot));
    depth.saturating_sub(d as u32)
}

fn run(nranks: usize, depth: u32, cfg: MpiConfig) -> (SimTime, MetricsRegistry, ClusterCommMap) {
    let out = Cluster::new(ClusterConfig::paper_testbed(nranks)).run(|rank| {
        rank.enable_metrics();
        rank.enable_comm_map();
        let mut comm = Comm::new(rank, cfg.clone());
        let me = comm.rank();
        let n = comm.size();
        comm.barrier();
        comm.rank_mut().reset_clock();
        // Drop the warmup barrier's traffic from the observability view.
        let _ = comm.rank_mut().take_metrics();
        let _ = comm.rank_mut().take_comm_map();
        for step in 0..STEPS {
            let spot = (step * 5) % n;
            let my_level = level(me, spot, n, depth);
            comm.rank_mut().compute_flops(BASE_CELLS << (2 * my_level));

            let succ = (me + 1) % n;
            let pred = (me + n - 1) % n;
            let cells = 16usize << (2 * my_level);
            let dt = Datatype::contiguous(cells, &Datatype::double()).expect("boundary");
            let empty = Datatype::contiguous(0, &Datatype::double()).expect("empty");
            let mut sends: Vec<WPeer> = (0..n).map(|_| WPeer::new(0, 0, empty.clone())).collect();
            let mut recvs = sends.clone();
            sends[succ] = WPeer::new(0, 1, dt.clone());
            sends[pred] = WPeer::new(0, 1, dt.clone());
            let sc = 16usize << (2 * level(succ, spot, n, depth));
            let pc = 16usize << (2 * level(pred, spot, n, depth));
            recvs[succ] = WPeer::new(
                0,
                1,
                Datatype::contiguous(sc, &Datatype::double()).expect("succ"),
            );
            recvs[pred] = WPeer::new(
                sc * 8,
                1,
                Datatype::contiguous(pc, &Datatype::double()).expect("pred"),
            );
            let sendbuf = vec![me as u8; cells * 8];
            let mut recvbuf = vec![0u8; (sc + pc) * 8];
            comm.alltoallw(&sendbuf, &sends, &mut recvbuf, &recvs);
        }
        let t = comm.rank_ref().now();
        let metrics = comm.rank_mut().take_metrics();
        let map = comm.rank_mut().take_comm_map();
        (t, metrics, map)
    });
    let tmax = out.iter().map(|(t, _, _)| *t).max().expect("nonempty");
    let mut merged = MetricsRegistry::enabled();
    let mut maps = Vec::with_capacity(out.len());
    for (_, m, map) in out {
        merged.merge(&m);
        maps.push(map);
    }
    (tmax, merged, merge_comm_maps(&maps))
}

fn main() {
    let cli = BenchCli::parse();
    let smoke = cli.smoke;
    let (depth_ranks, depths) = if smoke {
        (16usize, 0..=2u32)
    } else {
        (64usize, 0..=4u32)
    };
    let scaling: &[usize] = if smoke {
        &[8, 16]
    } else {
        &[8, 16, 32, 64, 128]
    };

    // (a) Refinement-depth sweep. The decision metrics from every run are
    // merged (so the audit table shows both schedules side by side); the
    // comm map shown is the deepest baseline run's — the most skewed
    // traffic the sweep produces.
    let mut base = Series::new("round-robin");
    let mut binned = Series::new("three-bin");
    let mut imp = Series::new("improvement-%");
    let mut decisions = MetricsRegistry::enabled();
    let mut skew_map: Option<ClusterCommMap> = None;
    for depth in depths {
        let (tb, mb, map) = run(depth_ranks, depth, MpiConfig::baseline());
        let (tn, mn, _) = run(depth_ranks, depth, MpiConfig::optimized());
        decisions.merge(&mb);
        decisions.merge(&mn);
        skew_map = Some(map);
        base.push(depth.to_string(), tb.as_ms());
        binned.push(depth.to_string(), tn.as_ms());
        imp.push(depth.to_string(), improvement_pct(tb, tn));
    }
    let series = vec![base, binned, imp];
    report_with_observability(
        "ext_amr_depth",
        "refinement depth",
        &format!("time per run (msec), {depth_ranks} ranks"),
        &series,
        Some(&decisions),
        skew_map.as_ref(),
    );
    cli.gate("ext_amr_depth", &series[..2]);

    // (b) Scaling sweep at depth 2.
    let mut base = Series::new("round-robin");
    let mut binned = Series::new("three-bin");
    let mut imp = Series::new("improvement-%");
    for &n in scaling {
        let (tb, _, _) = run(n, 2, MpiConfig::baseline());
        let (tn, _, _) = run(n, 2, MpiConfig::optimized());
        base.push(n.to_string(), tb.as_ms());
        binned.push(n.to_string(), tn.as_ms());
        imp.push(n.to_string(), improvement_pct(tb, tn));
    }
    let series = vec![base, binned, imp];
    report(
        "ext_amr_scaling",
        "processes",
        "time per run (msec), depth 2",
        &series,
    );
    cli.gate("ext_amr_scaling", &series[..2]);
}
