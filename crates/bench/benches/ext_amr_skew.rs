//! Extension study (the paper's §7 future work): how adaptive-mesh load
//! imbalance interacts with the alltoallw schedule.
//!
//! A moving refinement hotspot gives a few ranks `2^(2·level)` times the
//! compute and boundary volume of the rest. We sweep the refinement depth
//! and the machine size; the round-robin schedule globalizes the hotspot's
//! delay through its zero-byte synchronizations, the binned schedule
//! confines it to the hotspot's neighbourhood.
//!
//! Every run also collects the communication map and the decision-audit
//! metrics (neither touches the simulated clock, so the gated latencies
//! are identical to an uninstrumented run): the depth-sweep report appends
//! the who-talks-to-whom heatmap and the algorithm-decision table, and
//! writes `target/analysis/ext_amr_depth.{comm.json,decisions.txt}` for
//! CI artifact upload.
//!
//! `--smoke` shrinks the machine and the sweeps for CI; the lower-is-better
//! latency series are gated against committed baselines with
//! `--baseline check`.

use ncd_bench::{
    amr_diag_loop, amr_diag_workload, improvement_pct, relabel, report, report_with_diagnosis,
    report_with_observability, whatif_phase, BenchCli, Series, AMR_DIAG_OUTLIER,
};
use ncd_core::{
    decisions_from_trace, detect_misselections, remediation_hints, render_hints, Comm, MpiConfig,
    WPeer,
};
use ncd_datatype::Datatype;
use ncd_simnet::{
    diagnose, merge_comm_maps, mirror_to_flight_recorder, Cluster, ClusterCommMap, ClusterConfig,
    MetricsRegistry, SimTime, TraceEvent,
};

const STEPS: usize = 10;
const BASE_CELLS: u64 = 2_000;

fn level(rank: usize, spot: usize, n: usize, depth: u32) -> u32 {
    let d = rank.abs_diff(spot).min(n - rank.abs_diff(spot));
    depth.saturating_sub(d as u32)
}

fn run(nranks: usize, depth: u32, cfg: MpiConfig) -> (SimTime, MetricsRegistry, ClusterCommMap) {
    let out = Cluster::new(ClusterConfig::paper_testbed(nranks)).run(|rank| {
        rank.enable_metrics();
        rank.enable_comm_map();
        let mut comm = Comm::new(rank, cfg.clone());
        let me = comm.rank();
        let n = comm.size();
        comm.barrier();
        comm.rank_mut().reset_clock();
        // Drop the warmup barrier's traffic from the observability view.
        let _ = comm.rank_mut().take_metrics();
        let _ = comm.rank_mut().take_comm_map();
        for step in 0..STEPS {
            let spot = (step * 5) % n;
            let my_level = level(me, spot, n, depth);
            comm.rank_mut().compute_flops(BASE_CELLS << (2 * my_level));

            let succ = (me + 1) % n;
            let pred = (me + n - 1) % n;
            let cells = 16usize << (2 * my_level);
            let dt = Datatype::contiguous(cells, &Datatype::double()).expect("boundary");
            let empty = Datatype::contiguous(0, &Datatype::double()).expect("empty");
            let mut sends: Vec<WPeer> = (0..n).map(|_| WPeer::new(0, 0, empty.clone())).collect();
            let mut recvs = sends.clone();
            sends[succ] = WPeer::new(0, 1, dt.clone());
            sends[pred] = WPeer::new(0, 1, dt.clone());
            let sc = 16usize << (2 * level(succ, spot, n, depth));
            let pc = 16usize << (2 * level(pred, spot, n, depth));
            recvs[succ] = WPeer::new(
                0,
                1,
                Datatype::contiguous(sc, &Datatype::double()).expect("succ"),
            );
            recvs[pred] = WPeer::new(
                sc * 8,
                1,
                Datatype::contiguous(pc, &Datatype::double()).expect("pred"),
            );
            let sendbuf = vec![me as u8; cells * 8];
            let mut recvbuf = vec![0u8; (sc + pc) * 8];
            comm.alltoallw(&sendbuf, &sends, &mut recvbuf, &recvs);
        }
        let t = comm.rank_ref().now();
        let metrics = comm.rank_mut().take_metrics();
        let map = comm.rank_mut().take_comm_map();
        (t, metrics, map)
    });
    let tmax = out.iter().map(|(t, _, _)| *t).max().expect("nonempty");
    let mut merged = MetricsRegistry::enabled();
    let mut maps = Vec::with_capacity(out.len());
    for (_, m, map) in out {
        merged.merge(&m);
        maps.push(map);
    }
    (tmax, merged, merge_comm_maps(&maps))
}

fn main() {
    let mut cli = BenchCli::parse();
    let smoke = cli.smoke;
    let (depth_ranks, depths) = if smoke {
        (16usize, 0..=2u32)
    } else {
        (64usize, 0..=4u32)
    };
    let scaling: &[usize] = if smoke {
        &[8, 16]
    } else {
        &[8, 16, 32, 64, 128]
    };

    // (a) Refinement-depth sweep. The decision metrics from every run are
    // merged (so the audit table shows both schedules side by side); the
    // comm map shown is the deepest baseline run's — the most skewed
    // traffic the sweep produces.
    let mut base = Series::new("round-robin");
    let mut binned = Series::new("three-bin");
    let mut imp = Series::new("improvement-%");
    let mut decisions = MetricsRegistry::enabled();
    let mut skew_map: Option<ClusterCommMap> = None;
    for depth in depths {
        let (tb, mb, map) = run(depth_ranks, depth, MpiConfig::baseline());
        let (tn, mn, _) = run(depth_ranks, depth, MpiConfig::optimized());
        decisions.merge(&mb);
        decisions.merge(&mn);
        skew_map = Some(map);
        base.push(depth.to_string(), tb.as_ms());
        binned.push(depth.to_string(), tn.as_ms());
        imp.push(depth.to_string(), improvement_pct(tb, tn));
    }
    let series_depth = vec![base, binned, imp];
    report_with_observability(
        "ext_amr_depth",
        "refinement depth",
        &format!("time per run (msec), {depth_ranks} ranks"),
        &series_depth,
        Some(&decisions),
        skew_map.as_ref(),
    );
    cli.gate("ext_amr_depth", &series_depth[..2]);

    // (b) Scaling sweep at depth 2.
    let mut base = Series::new("round-robin");
    let mut binned = Series::new("three-bin");
    let mut imp = Series::new("improvement-%");
    for &n in scaling {
        let (tb, _, _) = run(n, 2, MpiConfig::baseline());
        let (tn, _, _) = run(n, 2, MpiConfig::optimized());
        base.push(n.to_string(), tb.as_ms());
        binned.push(n.to_string(), tn.as_ms());
        imp.push(n.to_string(), improvement_pct(tb, tn));
    }
    let series_scaling = vec![base, binned, imp];
    report(
        "ext_amr_scaling",
        "processes",
        "time per run (msec), depth 2",
        &series_scaling,
    );
    cli.gate("ext_amr_scaling", &series_scaling[..2]);

    // (c) Root-cause diagnosis phase. Runs last so the flight recorders
    // parked by this run are the ones a later anomaly dump would show,
    // with the mirrored findings in them.
    let (diag_series, diag_map, diag_traces) = diagnosis_phase(&cli, depth_ranks);

    // (d) Counterfactual verification (`--whatif`): plan interventions
    // from the diagnosis the phase above just produced, deterministically
    // replay the same workload under each one, and report which claims
    // survive measurement. The resulting byte-stable JSON rides into the
    // observatory ledger as the run's `whatif.json` artifact.
    if cli.whatif {
        cli.whatif_artifact = whatif_phase(
            "ext_amr_skew",
            &ClusterConfig::paper_testbed(depth_ranks),
            &MpiConfig::baseline(),
            &diag_traces,
            Some(&diag_map),
            amr_diag_workload,
        );
    }

    // Observatory pass: both sweeps' series (relabelled so the two
    // round-robin/three-bin pairs stay distinct in the differential's
    // join) plus the diagnosis run's traffic matrix and traces — the
    // skewed-allgatherv workload whose wait blame and finding set the
    // finding-diff tracks across commits.
    if cli.wants_observatory() {
        let mut ledgered = relabel("depth", &series_depth);
        ledgered.extend(relabel("scaling", &series_scaling));
        ledgered.push(diag_series);
        let knobs = vec![
            ("ranks".to_string(), depth_ranks.to_string()),
            ("steps".to_string(), STEPS.to_string()),
            ("diag_flavor".to_string(), "baseline-ring".to_string()),
        ];
        cli.observatory(
            "ext_amr_skew",
            &knobs,
            &ledgered,
            None,
            Some(&diag_map),
            None,
            Some(&diag_traces),
        );
    }
}

/// A skewed-counts allgatherv under the *baseline* selector: the outlier
/// rank both computes longest and contributes the outlier volume, and the
/// baseline picks the ring over it (total over the long threshold). The
/// wait-state classifier must blame the majority of the allgatherv wait
/// on the outlier rank via sender-caused patterns, and the remediation
/// join must cross-reference the misselection the decision audit flags.
/// The outlier's blame share is gated so the classifier cannot silently
/// drift. Returns the gated blame-share series plus the run's traffic
/// matrix and per-rank traces so the observatory pass can ledger them.
fn diagnosis_phase(
    cli: &BenchCli,
    nranks: usize,
) -> (Series, ClusterCommMap, Vec<Vec<TraceEvent>>) {
    const OUTLIER: usize = AMR_DIAG_OUTLIER;
    let cluster = ClusterConfig::paper_testbed(nranks);
    let cost = cluster.cost.clone();
    let cfg = MpiConfig::baseline();
    let mpi = cfg.clone();
    let out = Cluster::new(cluster).run(move |rank| {
        rank.enable_tracing();
        rank.enable_comm_map();
        let mut comm = Comm::new(rank, mpi.clone());
        comm.barrier();
        comm.rank_mut().reset_clock();
        let _ = comm.rank_mut().take_comm_map(); // drop warmup traffic
                                                 // The measured loop is shared with the what-if replay
                                                 // (`amr_diag_workload`), so the counterfactual verifies exactly
                                                 // the workload this phase diagnosed.
        amr_diag_loop(&mut comm);
        let map = comm.rank_mut().take_comm_map();
        let trace = comm.rank_mut().take_trace();
        (trace, map)
    });
    let (traces, maps): (Vec<_>, Vec<_>) = out.into_iter().unzip();
    let map = merge_comm_maps(&maps);
    let diag = diagnose(&traces);
    let decisions = decisions_from_trace(&traces[OUTLIER]);
    let audit = detect_misselections(&decisions, Some(&map), &cost, &cfg);
    let hints = remediation_hints(&diag, &decisions, &audit, &[]);
    report_with_diagnosis(
        "ext_amr_diagnosis",
        "metric",
        &format!("skewed allgatherv under the baseline ring, {nranks} ranks"),
        &[],
        None,
        Some(&map),
        None,
        Some(&diag),
    );
    print!("{}", render_hints(&hints));
    let mirrored = mirror_to_flight_recorder(&diag, 5);
    println!("{mirrored} finding(s) mirrored into the flight recorder");

    let op_total = diag.op_severity("allgatherv");
    let outlier_caused = diag.sender_caused_severity("allgatherv", OUTLIER);
    let share = 100.0 * outlier_caused.as_ns() as f64 / op_total.as_ns().max(1) as f64;
    println!(
        "outlier blame share: {share:.1}% of {op_total} allgatherv wait is \
         sender-caused by rank {OUTLIER}"
    );
    assert!(
        share > 50.0,
        "the outlier rank must own the majority of the allgatherv wait, got {share:.1}%"
    );
    assert!(
        hints.iter().any(|h| h.contains("misselection")),
        "the top finding must cross-reference the flagged ring misselection: {hints:?}"
    );

    let mut s = Series::new("outlier-blame-share-%");
    s.push("allgatherv", share);
    cli.gate("ext_amr_diagnosis", std::slice::from_ref(&s));
    (s, map, traces)
}
