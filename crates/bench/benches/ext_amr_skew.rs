//! Extension study (the paper's §7 future work): how adaptive-mesh load
//! imbalance interacts with the alltoallw schedule.
//!
//! A moving refinement hotspot gives a few ranks `2^(2·level)` times the
//! compute and boundary volume of the rest. We sweep the refinement depth
//! and the machine size; the round-robin schedule globalizes the hotspot's
//! delay through its zero-byte synchronizations, the binned schedule
//! confines it to the hotspot's neighbourhood.

use ncd_bench::{improvement_pct, report, Series};
use ncd_core::{Comm, MpiConfig, WPeer};
use ncd_datatype::Datatype;
use ncd_simnet::{Cluster, ClusterConfig, SimTime};

const STEPS: usize = 10;
const BASE_CELLS: u64 = 2_000;

fn level(rank: usize, spot: usize, n: usize, depth: u32) -> u32 {
    let d = rank.abs_diff(spot).min(n - rank.abs_diff(spot));
    depth.saturating_sub(d as u32)
}

fn run(nranks: usize, depth: u32, cfg: MpiConfig) -> SimTime {
    let out = Cluster::new(ClusterConfig::paper_testbed(nranks)).run(|rank| {
        let mut comm = Comm::new(rank, cfg.clone());
        let me = comm.rank();
        let n = comm.size();
        comm.barrier();
        comm.rank_mut().reset_clock();
        for step in 0..STEPS {
            let spot = (step * 5) % n;
            let my_level = level(me, spot, n, depth);
            comm.rank_mut().compute_flops(BASE_CELLS << (2 * my_level));

            let succ = (me + 1) % n;
            let pred = (me + n - 1) % n;
            let cells = 16usize << (2 * my_level);
            let dt = Datatype::contiguous(cells, &Datatype::double()).expect("boundary");
            let empty = Datatype::contiguous(0, &Datatype::double()).expect("empty");
            let mut sends: Vec<WPeer> = (0..n).map(|_| WPeer::new(0, 0, empty.clone())).collect();
            let mut recvs = sends.clone();
            sends[succ] = WPeer::new(0, 1, dt.clone());
            sends[pred] = WPeer::new(0, 1, dt.clone());
            let sc = 16usize << (2 * level(succ, spot, n, depth));
            let pc = 16usize << (2 * level(pred, spot, n, depth));
            recvs[succ] = WPeer::new(
                0,
                1,
                Datatype::contiguous(sc, &Datatype::double()).expect("succ"),
            );
            recvs[pred] = WPeer::new(
                sc * 8,
                1,
                Datatype::contiguous(pc, &Datatype::double()).expect("pred"),
            );
            let sendbuf = vec![me as u8; cells * 8];
            let mut recvbuf = vec![0u8; (sc + pc) * 8];
            comm.alltoallw(&sendbuf, &sends, &mut recvbuf, &recvs);
        }
        comm.rank_ref().now()
    });
    out.into_iter().max().expect("nonempty")
}

fn main() {
    // (a) Refinement-depth sweep at 64 ranks.
    let mut base = Series::new("round-robin");
    let mut binned = Series::new("three-bin");
    let mut imp = Series::new("improvement-%");
    for depth in 0..=4u32 {
        let tb = run(64, depth, MpiConfig::baseline());
        let tn = run(64, depth, MpiConfig::optimized());
        base.push(depth.to_string(), tb.as_ms());
        binned.push(depth.to_string(), tn.as_ms());
        imp.push(depth.to_string(), improvement_pct(tb, tn));
    }
    report(
        "ext_amr_depth",
        "refinement depth",
        "time per run (msec), 64 ranks",
        &[base, binned, imp],
    );

    // (b) Scaling sweep at depth 2.
    let mut base = Series::new("round-robin");
    let mut binned = Series::new("three-bin");
    let mut imp = Series::new("improvement-%");
    for &n in &[8usize, 16, 32, 64, 128] {
        let tb = run(n, 2, MpiConfig::baseline());
        let tn = run(n, 2, MpiConfig::optimized());
        base.push(n.to_string(), tb.as_ms());
        binned.push(n.to_string(), tn.as_ms());
        imp.push(n.to_string(), improvement_pct(tb, tn));
    }
    report(
        "ext_amr_scaling",
        "processes",
        "time per run (msec), depth 2",
        &[base, binned, imp],
    );
}
