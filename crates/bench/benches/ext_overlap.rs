//! Extension study: how much ghost-exchange latency the split scatter
//! (`VecScatterBegin` / interior compute / `VecScatterEnd`) hides.
//!
//! A 2-D star-stencil DA performs its ghost exchange while a fixed slab of
//! interior compute runs, in two forms: sequential (monolithic `apply`,
//! then compute) and overlapped (begin / compute / end). We sweep the
//! interior compute per exchange; the overlapped curve flattens to
//! max(compute, communication) while the sequential curve is their sum.
//!
//! `--smoke` shrinks the grid, the machine, and the sweep for CI; the
//! lower-is-better latency series are gated against committed baselines
//! with `--baseline check`.

use ncd_bench::{improvement_pct, report, time_phase_traced, BenchCli, Series};
use ncd_core::{Comm, MpiConfig};
use ncd_petsc::{DistributedArray, ScatterBackend, StencilKind};
use ncd_simnet::{Cluster, ClusterConfig, SimTime};

/// Per-iteration makespan (max over ranks / reps) of one ghost exchange
/// plus `flops` of interior compute, split or sequential.
fn exchange_latency(nranks: usize, grid: usize, flops: u64, overlap: bool, reps: usize) -> SimTime {
    let out = Cluster::new(ClusterConfig::paper_testbed(nranks)).run(move |rank| {
        let mut comm = Comm::new(rank, MpiConfig::optimized());
        let da = DistributedArray::new(&mut comm, &[grid, grid], 1, StencilKind::Star, 1);
        let mut g = da.create_global_vec();
        for (off, p) in da.owned_points().enumerate() {
            g.local_mut()[off] = (p[0] * 31 + p[1]) as f64;
        }
        let mut l = da.create_local_vec();
        // Warmup round, then measure.
        da.global_to_local(&mut comm, &g, &mut l, ScatterBackend::HandTuned);
        comm.barrier();
        comm.rank_mut().reset_clock();
        for _ in 0..reps {
            if overlap {
                let h = da.global_to_local_begin(&mut comm, &g, &mut l, ScatterBackend::HandTuned);
                comm.rank_mut().compute_flops(flops);
                da.global_to_local_end(&mut comm, h, &mut l);
            } else {
                da.global_to_local(&mut comm, &g, &mut l, ScatterBackend::HandTuned);
                comm.rank_mut().compute_flops(flops);
            }
        }
        comm.rank_ref().now()
    });
    let tmax = out.into_iter().max().expect("nonempty");
    SimTime::from_ns(tmax.as_ns() / reps as u64)
}

fn main() {
    let cli = BenchCli::parse();
    let smoke = cli.smoke;
    let (nranks, grid, reps) = if smoke { (4, 48, 5) } else { (16, 128, 10) };
    let sweep: &[u64] = if smoke {
        &[0, 1_000_000, 4_000_000]
    } else {
        &[0, 500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000]
    };

    let mut seq = Series::new("sequential");
    let mut ovl = Series::new("overlapped");
    let mut hidden = Series::new("hidden-%");
    for &flops in sweep {
        let ts = exchange_latency(nranks, grid, flops, false, reps);
        let to = exchange_latency(nranks, grid, flops, true, reps);
        seq.push(flops.to_string(), ts.as_us());
        ovl.push(flops.to_string(), to.as_us());
        hidden.push(flops.to_string(), improvement_pct(ts, to));
    }
    let series = vec![seq, ovl, hidden];
    report(
        "ext_overlap",
        "interior flops",
        &format!("latency per exchange (usec), {grid}x{grid} star DA, {nranks} ranks"),
        &series,
    );
    // Gate the two latency series only; the derived hidden-% series is
    // higher-is-better and stays out of the baseline.
    cli.gate("ext_overlap", &series[..2]);

    // Observatory pass: one traced overlapped exchange at the sweep's
    // largest compute slab, so a shrinking overlap window shows up in the
    // differential as wait-time growth on the scatter's end phase.
    if cli.wants_observatory() {
        let flops = *sweep.last().expect("nonempty sweep");
        let (_, _, metrics, map, history, traces) = time_phase_traced(
            ClusterConfig::paper_testbed(nranks),
            MpiConfig::optimized(),
            3,
            move |comm, _| {
                let da = DistributedArray::new(comm, &[grid, grid], 1, StencilKind::Star, 1);
                let mut g = da.create_global_vec();
                for (off, p) in da.owned_points().enumerate() {
                    g.local_mut()[off] = (p[0] * 31 + p[1]) as f64;
                }
                let mut l = da.create_local_vec();
                let h = da.global_to_local_begin(comm, &g, &mut l, ScatterBackend::HandTuned);
                comm.rank_mut().compute_flops(flops);
                da.global_to_local_end(comm, h, &mut l);
            },
        );
        let knobs = vec![
            ("ranks".to_string(), nranks.to_string()),
            ("grid".to_string(), format!("{grid}x{grid}")),
            ("interior_flops".to_string(), flops.to_string()),
            ("mode".to_string(), "overlapped".to_string()),
        ];
        cli.observatory(
            "ext_overlap",
            &knobs,
            &series,
            Some(&metrics),
            Some(&map),
            Some(&history),
            Some(&traces),
        );
    }
}
