//! Criterion wall-clock benchmarks of the two computational kernels the
//! optimized framework introduces: the pack engines and Floyd–Rivest
//! selection. These complement the simulated-time figures: they show that
//! the *real* code implementing the optimizations is itself fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ncd_core::{detect_outliers, k_select};
use ncd_datatype::{
    matrix_column_type, DualContextEngine, EngineParams, OpCounts, PackEngine, SingleContextEngine,
};

fn bench_pack_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack_engines");
    for &n in &[64usize, 128, 256] {
        let bytes = n * n * 24;
        let src = vec![7u8; bytes];
        let col = matrix_column_type(n, n, 3).expect("column type");
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(BenchmarkId::new("single_context", n), &n, |b, _| {
            b.iter(|| {
                let mut e = SingleContextEngine::new(&col, n, EngineParams::default());
                let mut counts = OpCounts::default();
                e.pack_all(&src, &mut counts).expect("pack")
            })
        });
        group.bench_with_input(BenchmarkId::new("dual_context", n), &n, |b, _| {
            b.iter(|| {
                let mut e = DualContextEngine::new(&col, n, EngineParams::default());
                let mut counts = OpCounts::default();
                e.pack_all(&src, &mut counts).expect("pack")
            })
        });
    }
    group.finish();
}

fn bench_kselect(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    for &n in &[1_000usize, 100_000, 1_000_000] {
        // Deterministic pseudorandom volumes with one outlier.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut vols: Vec<u64> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 1024
            })
            .collect();
        vols[n / 2] = 1 << 30;
        group.bench_with_input(BenchmarkId::new("floyd_rivest", n), &n, |b, &n| {
            b.iter(|| {
                let mut work = vols.clone();
                k_select(&mut work, n - 1)
            })
        });
        group.bench_with_input(BenchmarkId::new("full_sort", n), &n, |b, &n| {
            b.iter(|| {
                let mut work = vols.clone();
                work.sort_unstable();
                work[n - 1]
            })
        });
        let usized: Vec<usize> = vols.iter().map(|&v| v as usize).collect();
        group.bench_with_input(BenchmarkId::new("outlier_detect", n), &n, |b, _| {
            b.iter(|| detect_outliers(&usized, 0.9, 8.0))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pack_engines, bench_kselect
}
criterion_main!(benches);
