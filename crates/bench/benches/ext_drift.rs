//! Extension study: watching communication **drift** through an
//! AMR-style remeshing run.
//!
//! The paper's workloads are nonuniform but *stationary* — the outlier
//! pattern of one allgatherv call looks like the next. Adaptive mesh
//! refinement breaks that: every remesh moves the refined region, so the
//! per-process volume set (and with it the right algorithm choice) shifts
//! mid-run. This bench drives a synthetic remeshing schedule — three
//! regimes, each ending in an injected remesh that relocates and deepens
//! the refinement hotspot — through a pinned-ring allgatherv boundary
//! exchange, with the epoch history and online drift monitor armed.
//!
//! What the temporal layer must show (and this bench asserts):
//!
//! * every injected remesh fires a [`DriftEvent`] on the volume or skew
//!   series within the detector's warmup bound of the boundary epoch;
//! * the pattern-recurrence join sees each regime's hash recur while the
//!   regimes stay put, so recurrence stability drops as remeshes pile up.
//!
//! The per-regime step latencies are gated against committed baselines
//! with `--baseline check` (smoke and full stored separately).

use ncd_bench::{report_with_history, BenchCli, Series};
use ncd_core::{
    drift_events_from_trace, pattern_recurrence, AllgathervAlgorithm, Comm, DriftConfig,
    DriftEvent, MpiConfig,
};
use ncd_simnet::{
    merge_comm_maps, merge_histories, Cluster, ClusterCommMap, ClusterConfig, History,
    MetricsRegistry, SimTime, TraceEvent,
};

const BASE_DOUBLES: usize = 16;

/// One stationary stretch of the run: a refinement hotspot (or a uniform
/// mesh) held for `epochs` boundary exchanges. The transition *into* a
/// regime is the injected remesh.
#[derive(Clone, Copy)]
struct Regime {
    epochs: usize,
    /// Hotspot rank as a fraction of the communicator (None = uniform).
    spot_frac: Option<(usize, usize)>,
    depth: u32,
}

fn regimes(epochs: usize) -> [Regime; 3] {
    [
        Regime {
            epochs,
            spot_frac: None,
            depth: 0,
        },
        // First remesh: refine around n/3, two levels deep.
        Regime {
            epochs,
            spot_frac: Some((1, 3)),
            depth: 2,
        },
        // Second remesh: the front moves to 2n/3 and deepens.
        Regime {
            epochs,
            spot_frac: Some((2, 3)),
            depth: 3,
        },
    ]
}

fn level(rank: usize, spot: usize, n: usize, depth: u32) -> u32 {
    let d = rank.abs_diff(spot).min(n - rank.abs_diff(spot));
    depth.saturating_sub(d as u32)
}

/// Per-rank boundary payload in bytes under the regime's mesh.
fn counts_for(n: usize, r: &Regime) -> Vec<usize> {
    (0..n)
        .map(|rank| {
            let lvl = match r.spot_frac {
                None => 0,
                Some((num, den)) => level(rank, n * num / den, n, r.depth),
            };
            (BASE_DOUBLES << (2 * lvl)) * 8
        })
        .collect()
}

#[allow(clippy::type_complexity)]
fn run(
    nranks: usize,
    epochs: usize,
) -> (
    Vec<SimTime>,
    MetricsRegistry,
    ClusterCommMap,
    History,
    Vec<DriftEvent>,
    Vec<Vec<TraceEvent>>,
) {
    let out = Cluster::new(ClusterConfig::paper_testbed(nranks)).run(|rank| {
        rank.enable_metrics();
        rank.enable_tracing();
        rank.enable_history();
        let mut comm = Comm::new(rank, MpiConfig::optimized());
        let me = comm.rank();
        let n = comm.size();
        // Per-regime clock marks, so the report shows the cost shift the
        // drift detector is flagging.
        let mut marks = Vec::new();
        let mut last = comm.rank_ref().now();
        for regime in regimes(epochs) {
            let counts = counts_for(n, &regime);
            let total: usize = counts.iter().sum();
            for _ in 0..regime.epochs {
                let send = vec![me as u8; counts[me]];
                let mut recv = vec![0u8; total];
                // Pinned ring: the subject here is the *traffic* shifting
                // under a fixed algorithm, not the selector.
                comm.allgatherv_with(AllgathervAlgorithm::Ring, &send, &counts, &mut recv);
            }
            let now = comm.rank_ref().now();
            marks.push(SimTime::from_ns(
                (now.as_ns() - last.as_ns()) / regime.epochs as u64,
            ));
            last = now;
        }
        let trace = comm.rank_mut().take_trace();
        let drift = drift_events_from_trace(&trace);
        let metrics = comm.rank_mut().take_metrics();
        let map = comm.rank_mut().take_comm_map();
        let history = comm.rank_mut().take_history();
        (marks, metrics, map, history, drift, trace)
    });
    let nregimes = out[0].0.len();
    let marks = (0..nregimes)
        .map(|i| out.iter().map(|(m, ..)| m[i]).max().expect("nonempty"))
        .collect();
    let mut merged = MetricsRegistry::enabled();
    let mut maps = Vec::with_capacity(out.len());
    let mut histories = Vec::with_capacity(out.len());
    let mut drift = Vec::new();
    let mut traces = Vec::with_capacity(out.len());
    for (_, m, map, h, d, tr) in out {
        merged.merge(&m);
        maps.push(map);
        histories.push(h);
        if drift.is_empty() {
            drift = d; // SPMD: every rank's monitor fires identically
        }
        traces.push(tr);
    }
    (
        marks,
        merged,
        merge_comm_maps(&maps),
        merge_histories(&histories),
        drift,
        traces,
    )
}

fn main() {
    let cli = BenchCli::parse();
    let (nranks, epochs) = if cli.smoke { (16, 8) } else { (64, 12) };

    let (marks, metrics, map, history, drift, traces) = run(nranks, epochs);
    let mut lat = Series::new("step-latency");
    for (i, t) in marks.iter().enumerate() {
        lat.push(format!("regime{i}"), t.as_us());
    }
    let series = vec![lat];
    report_with_history(
        "ext_drift",
        "regime",
        &format!("time per exchange step (usec), {nranks} ranks, pinned ring"),
        &series,
        Some(&metrics),
        Some(&map),
        Some(&history),
    );

    // Every injected remesh (the entry into regimes 1 and 2) must be
    // flagged within the detector's re-warm bound of the boundary epoch.
    let bound = DriftConfig::default().warmup + 1;
    for (i, boundary) in [epochs as u32, 2 * epochs as u32].iter().enumerate() {
        let hit = drift
            .iter()
            .find(|e| e.occurrence >= *boundary && e.occurrence < boundary + bound);
        assert!(
            hit.is_some(),
            "remesh {} at epoch {boundary} not flagged within {bound} epochs; events: {drift:?}",
            i + 1
        );
    }
    println!(
        "\ninjected remeshes: 2, drift events fired: {} (detection bound {bound} epochs)",
        drift.len()
    );

    // Recurrence: three stationary regimes → exactly three distinct
    // pattern hashes on the ring series, dominant recurring every epoch
    // of its regime.
    let rec = pattern_recurrence(&history);
    let ring = rec
        .iter()
        .find(|r| r.label == "allgatherv/ring")
        .expect("ring series present");
    assert_eq!(
        (ring.epochs, ring.distinct),
        (3 * epochs, 3),
        "one pattern hash per regime"
    );
    assert_eq!(ring.dominant_count, epochs);

    cli.gate("ext_drift", &series);

    // Observatory pass: the drift run is already fully traced (the
    // detector feeds off the trace), so ledgering it costs nothing extra.
    // The epoch history rides along, letting the differential flag a
    // regime whose step latency drifted between commits.
    if cli.wants_observatory() {
        let knobs = vec![
            ("ranks".to_string(), nranks.to_string()),
            ("epochs_per_regime".to_string(), epochs.to_string()),
            ("regimes".to_string(), "3".to_string()),
            ("algorithm".to_string(), "ring-pinned".to_string()),
        ];
        cli.observatory(
            "ext_drift",
            &knobs,
            &series,
            Some(&metrics),
            Some(&map),
            Some(&history),
            Some(&traces),
        );
    }
}
