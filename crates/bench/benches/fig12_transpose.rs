//! Figure 12 — matrix-transpose benchmark.
//!
//! One rank sends an NxN matrix (each element three doubles) in
//! column-major order using a derived datatype; the other receives it
//! contiguously (row-major), effectively transposing it. Because the send
//! type is sparse (24-byte pieces), the pipelined pack engine classifies
//! every block sparse; the baseline single-context engine then re-searches
//! the datatype per block, so its latency grows super-linearly with the
//! matrix size, while the dual-context engine stays linear.
//!
//! Paper result: >85% improvement at 1024x1024, growing with size.
//!
//! The run collects `datatype/*` pack-pipeline metrics, so the report ends
//! with a `-log_view`-style per-engine table (blocks, sparse/dense mix,
//! seek segments) that makes the quadratic re-search directly visible.

use ncd_bench::{
    improvement_pct, report_with_metrics, time_phase_metrics, time_phase_traced, BenchCli, Series,
};
use ncd_core::{Comm, MpiConfig};
use ncd_datatype::{matrix_column_type, Datatype};
use ncd_simnet::{ClusterConfig, MetricsRegistry, SimTime, Tag};

/// One column-major send / contiguous receive of an NxN matrix of
/// three-double elements between ranks 0 and 1.
fn transpose_once(comm: &mut Comm, n: usize) {
    let bytes = n * n * 24;
    let col = matrix_column_type(n, n, 3).expect("column type");
    if comm.rank() == 0 {
        let src = vec![1u8; bytes];
        comm.send(&src, &col, n, 1, Tag(1));
    } else {
        let mut dst = vec![0u8; bytes];
        let row = Datatype::contiguous(bytes, &Datatype::byte()).expect("contiguous");
        comm.recv(&mut dst, &row, 1, Some(0), Tag(1));
    }
}

fn transpose_latency(n: usize, cfg: MpiConfig, merged: &mut MetricsRegistry) -> SimTime {
    let reps = if n <= 256 { 3 } else { 1 };
    let (t, _, metrics) =
        time_phase_metrics(ClusterConfig::uniform(2), cfg, reps, move |comm, _| {
            transpose_once(comm, n)
        });
    merged.merge(&metrics);
    t
}

fn main() {
    let cli = BenchCli::parse();
    let sizes: &[usize] = if cli.smoke {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    let mut base = Series::new("MVAPICH2-0.9.5");
    let mut new = Series::new("MVAPICH2-New");
    let mut imp = Series::new("improvement-%");
    let mut metrics = MetricsRegistry::enabled();
    for &n in sizes {
        let tb = transpose_latency(n, MpiConfig::baseline(), &mut metrics);
        let tn = transpose_latency(n, MpiConfig::optimized(), &mut metrics);
        let label = format!("{n}x{n}");
        base.push(label.clone(), tb.as_ms());
        new.push(label.clone(), tn.as_ms());
        imp.push(label, improvement_pct(tb, tn));
    }
    let series = [base, new, imp];
    report_with_metrics(
        "fig12_transpose",
        "matrix",
        "latency (msec)",
        &series,
        Some(&metrics),
    );

    // Observatory pass: one traced transpose at the sweep's largest
    // matrix under the optimized engine, so pack-pipeline regressions
    // (seek counters, per-block search) land in the ledgered metrics the
    // differential classifies as pack-side.
    if cli.wants_observatory() {
        let n = *sizes.last().expect("nonempty sweep");
        let (_, _, tm, map, history, traces) = time_phase_traced(
            ClusterConfig::uniform(2),
            MpiConfig::optimized(),
            1,
            move |comm, _| transpose_once(comm, n),
        );
        let knobs = vec![
            ("matrix".to_string(), format!("{n}x{n}")),
            ("ranks".to_string(), "2".to_string()),
            ("flavor".to_string(), "auto".to_string()),
        ];
        cli.observatory(
            "fig12_transpose",
            &knobs,
            &series,
            Some(&tm),
            Some(&map),
            Some(&history),
            Some(&traces),
        );
    }
}
