//! Ablation studies of the design constants the paper (and DESIGN.md)
//! call out, in simulated time:
//!
//! * the look-ahead window size — the paper uses ~15 elements and argues
//!   the look-ahead cost is "near constant"; sweeping the window shows the
//!   trade-off between classification quality and redundant parsing;
//! * the alltoallw bin structure — {1 bin (= round robin order but
//!   zero-exempt), 2 bins (zero + rest), 3 bins (zero/small/large, the
//!   paper's choice)};
//! * the outlier-ratio threshold of the allgatherv detector.

use ncd_bench::{report, time_phase, Series};
use ncd_core::{AlltoallwSchedule, Comm, MpiConfig, WPeer};
use ncd_datatype::{matrix_column_type, Datatype, EngineParams};
use ncd_simnet::{Cluster, ClusterConfig, SimTime, Tag};

/// Like `ncd_bench::time_phase` but reporting the MEAN per-rank completion
/// time: the bin ablation's effect is that *cheap receivers finish early*,
/// which a max-over-ranks metric cannot see.
fn mean_time_phase<F>(
    cluster_cfg: ClusterConfig,
    mpi_cfg: MpiConfig,
    reps: usize,
    body: F,
) -> SimTime
where
    F: Fn(&mut Comm, usize) + Send + Sync,
{
    let out = Cluster::new(cluster_cfg).run(|rank| {
        let mut comm = Comm::new(rank, mpi_cfg.clone());
        body(&mut comm, usize::MAX);
        comm.barrier();
        comm.rank_mut().reset_clock();
        for it in 0..reps {
            body(&mut comm, it);
        }
        comm.rank_ref().now()
    });
    let mean_ns = out.iter().map(|t| t.as_ns()).sum::<u64>() / out.len() as u64;
    SimTime::from_ns(mean_ns / reps as u64)
}

/// Sweep the dual-context engine's look-ahead window on the transpose
/// workload.
fn ablate_lookahead() {
    let n = 512usize;
    let mut s = Series::new("dual-context");
    for window in [1usize, 4, 15, 64, 256] {
        let mut cfg = MpiConfig::optimized();
        cfg.engine = EngineParams {
            lookahead_segments: window,
            ..EngineParams::default()
        };
        let bytes = n * n * 24;
        let (t, _) = time_phase(ClusterConfig::uniform(2), cfg, 2, move |comm, _| {
            let col = matrix_column_type(n, n, 3).expect("column type");
            if comm.rank() == 0 {
                comm.send(&vec![1u8; bytes], &col, n, 1, Tag(0));
            } else {
                let row = Datatype::contiguous(bytes, &Datatype::byte()).expect("row");
                let mut dst = vec![0u8; bytes];
                comm.recv(&mut dst, &row, 1, Some(0), Tag(0));
            }
        });
        s.push(window.to_string(), t.as_ms());
    }
    report(
        "ablation_lookahead_window",
        "window (segments)",
        "512x512 transpose latency (msec)",
        &[s],
    );
}

/// Compare alltoallw schedules: the full round robin, a zero-exempt
/// variant without small-first ordering, and the paper's three bins.
///
/// Workload: every rank sends an *expensive-to-pack* noncontiguous 32 KB
/// message to its successor and a tiny message two ranks ahead. With only
/// zero exemption the tiny message is packed after the large one (ring
/// distance order), so its receiver idles through ~170 us of datatype
/// processing; the small-first bin removes that wait. Metric: mean
/// per-rank completion (the benefit accrues to the cheap receivers).
fn ablate_bins() {
    let mut rr = Series::new("round-robin (1 bin)");
    let mut zero_exempt = Series::new("zero-exempt (2 bins)");
    let mut binned = Series::new("three bins");
    for &n in &[8usize, 32, 128] {
        let run = |schedule: AlltoallwSchedule, small_threshold: usize| -> SimTime {
            let mut cfg = MpiConfig::optimized();
            cfg.small_msg_threshold = small_threshold;
            // One iteration: the small-first ordering is a *latency* effect
            // on each operation; back-to-back repetitions pipeline and hide
            // it behind the busy ranks' steady-state packing throughput.
            mean_time_phase(ClusterConfig::paper_testbed(n), cfg, 1, move |comm, _| {
                let me = comm.rank();
                let size = comm.size();
                let b = size / 2; // ranks 0..b are "busy", the rest "light"
                                  // Sparse 32 KB type: every other double of a 64 KB
                                  // region — expensive to pack (one segment per element).
                let sparse = Datatype::vector(4096, 1, 2, &Datatype::double()).expect("big");
                let small = Datatype::contiguous(2, &Datatype::double()).expect("small");
                let empty = Datatype::contiguous(0, &Datatype::double()).expect("empty");
                let mut sends: Vec<WPeer> =
                    (0..size).map(|_| WPeer::new(0, 0, empty.clone())).collect();
                let mut recvs = sends.clone();
                if me < b {
                    // Busy: big message around the busy ring, plus a
                    // tiny message to a light partner — which, without
                    // the small-first bin, queues behind the expensive
                    // pack of the big one.
                    sends[(me + 1) % b] = WPeer::new(0, 1, sparse.clone());
                    recvs[(me + b - 1) % b] = WPeer::new(0, 1, sparse.clone());
                    sends[b + me] = WPeer::new(8, 1, small.clone());
                    recvs[b + me] = WPeer::new(16, 1, small.clone());
                } else {
                    // Light: exchanges a tiny message with its busy
                    // partner; its completion time is what the
                    // small-first ordering protects.
                    let partner = me - b;
                    sends[partner] = WPeer::new(8, 1, small.clone());
                    recvs[partner] = WPeer::new(16, 1, small.clone());
                }
                let sendbuf = vec![me as u8; 65536];
                let mut recvbuf = vec![0u8; 65536];
                comm.alltoallw_with(schedule, &sendbuf, &sends, &mut recvbuf, &recvs);
            })
        };
        rr.push(
            n.to_string(),
            run(AlltoallwSchedule::RoundRobin, 1024).as_us(),
        );
        // "2 bins": zero exemption but everything else in one bin (a tiny
        // small-threshold puts all real messages in the large bin).
        zero_exempt.push(n.to_string(), run(AlltoallwSchedule::Binned, 0).as_us());
        binned.push(n.to_string(), run(AlltoallwSchedule::Binned, 1024).as_us());
    }
    report(
        "ablation_alltoallw_bins",
        "processes",
        "mean completion (usec)",
        &[rr, zero_exempt, binned],
    );
}

/// Sweep the outlier-ratio threshold on a mildly skewed volume set: too
/// low a threshold sends uniform workloads down the (slower there)
/// binomial algorithms; too high misses real outliers.
fn ablate_outlier_threshold() {
    let n = 64usize;
    let mut uniform_s = Series::new("heavy tail (ratio=4)");
    let mut outlier_s = Series::new("one 32KB outlier");
    for threshold in [1.5f64, 4.0, 8.0, 64.0, 1e9] {
        let run = |outlier: bool| -> SimTime {
            let mut cfg = MpiConfig::optimized();
            cfg.outlier_ratio = threshold;
            let (t, _) = time_phase(ClusterConfig::uniform(n), cfg, 5, move |comm, _| {
                // Heavy-tailed spread (ratio exactly 4 between the max and
                // the 0.9-quantile) vs one true outlier (ratio ~4096).
                let mut counts: Vec<usize> = (0..n)
                    .map(|i| if i % 13 == 0 { 4096 } else { 1024 })
                    .collect();
                if outlier {
                    counts = vec![8usize; n];
                    counts[0] = 32 * 1024;
                }
                let me = comm.rank();
                let send = vec![me as u8; counts[me]];
                let mut recv = vec![0u8; counts.iter().sum()];
                comm.allgatherv(&send, &counts, &mut recv);
            });
            t
        };
        uniform_s.push(format!("{threshold}"), run(false).as_us());
        outlier_s.push(format!("{threshold}"), run(true).as_us());
    }
    report(
        "ablation_outlier_threshold",
        "ratio threshold",
        "allgatherv latency (usec), 64 procs",
        &[uniform_s, outlier_s],
    );
}

fn main() {
    ablate_lookahead();
    ablate_bins();
    ablate_outlier_threshold();
}
