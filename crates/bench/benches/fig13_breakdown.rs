//! Figure 13 — datatype-processing time breakdown of the transpose
//! benchmark: the percentage of time spent in communication, packing and
//! context search, for the baseline and the dual-context engine.
//!
//! Paper result: the baseline's search share grows to dominate as the
//! matrix grows; the optimized engine eliminates search entirely, leaving
//! communication dominant.
//!
//! Pass `--report json` (or set `NCD_REPORT=json`) to also write a
//! machine-readable run report — the plotted series plus the cluster-wide
//! metrics snapshot — to `target/figures/<name>.json`.

use ncd_bench::{
    aggregate, relabel, report_with_metrics, time_phase_metrics, time_phase_traced, BenchCli,
    Series,
};
use ncd_core::{Comm, MpiConfig};
use ncd_datatype::{matrix_column_type, Datatype};
use ncd_simnet::{ClusterConfig, CostKind, MetricsRegistry, Tag};

/// The transpose exchange the breakdown instruments (same communication
/// as Figure 12's benchmark).
fn transpose_once(comm: &mut Comm, n: usize) {
    let bytes = n * n * 24;
    let col = matrix_column_type(n, n, 3).expect("column type");
    if comm.rank() == 0 {
        let src = vec![1u8; bytes];
        comm.send(&src, &col, n, 1, Tag(1));
    } else {
        let mut dst = vec![0u8; bytes];
        let row = Datatype::contiguous(bytes, &Datatype::byte()).expect("contiguous");
        comm.recv(&mut dst, &row, 1, Some(0), Tag(1));
    }
}

fn breakdown(n: usize, cfg: MpiConfig) -> (f64, f64, f64, MetricsRegistry) {
    let (_, stats, metrics) =
        time_phase_metrics(ClusterConfig::uniform(2), cfg, 1, move |comm, _| {
            transpose_once(comm, n)
        });
    let total = aggregate(&stats);
    // "Comm" from the application's view includes time blocked on the wire.
    let comm_frac = total.fraction(CostKind::Comm) + total.fraction(CostKind::Wait);
    let pack_frac = total.fraction(CostKind::Pack);
    let search_frac = total.fraction(CostKind::Search);
    let scale = 100.0 / (comm_frac + pack_frac + search_frac).max(f64::MIN_POSITIVE);
    (
        comm_frac * scale,
        pack_frac * scale,
        search_frac * scale,
        metrics,
    )
}

fn main() {
    let cli = BenchCli::parse();
    let sizes: &[usize] = if cli.smoke {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    let mut ledgered: Vec<Series> = Vec::new();
    for (cfg, name, prefix) in [
        (MpiConfig::baseline(), "fig13a_breakdown_baseline", "base"),
        (MpiConfig::optimized(), "fig13b_breakdown_optimized", "opt"),
    ] {
        let mut comm_s = Series::new("comm-%");
        let mut pack_s = Series::new("pack-%");
        let mut search_s = Series::new("search-%");
        let mut merged = MetricsRegistry::enabled();
        for &n in sizes {
            let (c, p, s, m) = breakdown(n, cfg.clone());
            let label = format!("{n}x{n}");
            comm_s.push(label.clone(), c);
            pack_s.push(label.clone(), p);
            search_s.push(label, s);
            merged.merge(&m);
        }
        let series = [comm_s, pack_s, search_s];
        report_with_metrics(name, "matrix", "% of time", &series, Some(&merged));
        if cli.wants_observatory() {
            ledgered.extend(relabel(prefix, &series));
        }
    }

    // Observatory pass: both engines' breakdown series in one ledgered
    // run, plus a traced transpose at the largest matrix under the
    // optimized engine so a search-share regression arrives with the
    // pack-pipeline counters that explain it.
    if cli.wants_observatory() {
        let n = *sizes.last().expect("nonempty sweep");
        let (_, _, tm, map, history, traces) = time_phase_traced(
            ClusterConfig::uniform(2),
            MpiConfig::optimized(),
            1,
            move |comm, _| transpose_once(comm, n),
        );
        let knobs = vec![
            ("matrix".to_string(), format!("{n}x{n}")),
            ("ranks".to_string(), "2".to_string()),
            ("flavor".to_string(), "auto".to_string()),
        ];
        cli.observatory(
            "fig13_breakdown",
            &knobs,
            &ledgered,
            Some(&tm),
            Some(&map),
            Some(&history),
            Some(&traces),
        );
    }
}
