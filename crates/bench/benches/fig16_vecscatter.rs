//! Figure 16 — PETSc vector-scatter benchmark.
//!
//! Two 1-D grids (one degree of freedom) are laid out in parallel; each
//! process scatters the elements of its portion of the first vector to
//! unique portions of the second. The destination pattern is
//! neighbour-heavy with a sparse long-range component, so per-peer volumes
//! are nonuniform, most peer pairs exchange nothing, and both sides are
//! noncontiguous in memory — the communication PETSc's ghost updates and
//! reorderings generate.
//!
//! Three implementations, as in the paper:
//!   * hand-tuned      — PETSc's explicit pack / point-to-point / unpack;
//!   * MVAPICH2-0.9.5  — derived datatypes + alltoallw over the baseline;
//!   * MVAPICH2-New    — same plan over the optimized framework.
//!
//! Paper result: the optimized MPI recovers to within ~4% of hand-tuned
//! (>95% better than the baseline at 128 procs).

use ncd_bench::{improvement_pct, report, time_phase_traced, BenchCli, Series};
use ncd_core::{Comm, MpiConfig};
use ncd_petsc::{IndexSet, Layout, PVec, ScatterBackend, VecScatter};
use ncd_simnet::{Cluster, ClusterConfig, SimTime};

/// Elements per process (the grid scales with the process count).
const LOCAL_ELEMS: usize = 4096;

/// Destination for global source index `g`: most elements shift to the
/// next process's block (large neighbour message); every 16th element goes
/// half the machine away (small long-range message). The interleaving
/// leaves short (≤15-element) contiguous runs on both sides — the
/// fine-grained noncontiguity PETSc index scatters produce. The map is a
/// permutation, so destinations are unique.
fn dest_of(g: usize, n_global: usize) -> usize {
    if g.is_multiple_of(16) {
        (g + n_global / 2 + 16) % n_global
    } else {
        (g + LOCAL_ELEMS) % n_global
    }
}

fn scatter_latency(nprocs: usize, cfg: MpiConfig, backend: ScatterBackend) -> SimTime {
    const REPS: usize = 5;
    let out = Cluster::new(ClusterConfig::paper_testbed(nprocs)).run(|rank| {
        let mut comm = Comm::new(rank, cfg.clone());
        let n = LOCAL_ELEMS * comm.size();
        let layout = Layout::balanced(n, comm.size());
        let (s, e) = layout.range(comm.rank());
        let x = PVec::from_local(
            layout.clone(),
            comm.rank(),
            (s..e).map(|g| g as f64).collect(),
        );
        let mut y = PVec::zeros(layout.clone(), comm.rank());
        let src = IndexSet::stride(s, 1, e - s);
        let dst = IndexSet::general((s..e).map(|g| dest_of(g, n)).collect::<Vec<_>>());
        // Plan creation is setup (PETSc's VecScatterCreate); time only the
        // scatter itself.
        let plan = VecScatter::create(&mut comm, layout.clone(), &src, layout, &dst);
        plan.apply(&mut comm, &x, &mut y, backend); // warmup
        comm.barrier();
        comm.rank_mut().reset_clock();
        for _ in 0..REPS {
            plan.apply(&mut comm, &x, &mut y, backend);
        }
        comm.rank_ref().now()
    });
    let tmax = out.into_iter().max().expect("nonempty");
    SimTime::from_ns(tmax.as_ns() / REPS as u64)
}

fn main() {
    let cli = BenchCli::parse();
    let procs: &[usize] = if cli.smoke {
        &[2, 4, 8, 16]
    } else {
        &[2, 4, 8, 16, 32, 64, 128]
    };
    let mut hand = Series::new("hand-tuned");
    let mut base = Series::new("MVAPICH2-0.9.5");
    let mut new = Series::new("MVAPICH2-New");
    let mut imp_new = Series::new("imp-new-%");
    let mut imp_hand = Series::new("imp-hand-%");
    for &n in procs {
        let th = scatter_latency(n, MpiConfig::optimized(), ScatterBackend::HandTuned);
        let tb = scatter_latency(n, MpiConfig::baseline(), ScatterBackend::Datatype);
        let tn = scatter_latency(n, MpiConfig::optimized(), ScatterBackend::Datatype);
        hand.push(n.to_string(), th.as_us());
        base.push(n.to_string(), tb.as_us());
        new.push(n.to_string(), tn.as_us());
        imp_new.push(n.to_string(), improvement_pct(tb, tn));
        imp_hand.push(n.to_string(), improvement_pct(tb, th));
    }
    let latency = [hand, base, new];
    let improvement = [imp_new, imp_hand];
    report("fig16a_vecscatter", "processes", "latency (usec)", &latency);
    report(
        "fig16b_vecscatter_improvement",
        "processes",
        "% improvement over MVAPICH2-0.9.5",
        &improvement,
    );

    // Observatory pass: one traced scatter (plan creation + apply) under
    // the optimized datatype path, so the ledgered run carries the
    // alltoallw schedule decisions and the per-peer traffic matrix the
    // differential diffs structurally.
    if cli.wants_observatory() {
        let n = if cli.smoke { 16 } else { 32 };
        let (_, _, metrics, map, history, traces) = time_phase_traced(
            ClusterConfig::paper_testbed(n),
            MpiConfig::optimized(),
            3,
            |comm, _| {
                let n_global = LOCAL_ELEMS * comm.size();
                let layout = Layout::balanced(n_global, comm.size());
                let (s, e) = layout.range(comm.rank());
                let x = PVec::from_local(
                    layout.clone(),
                    comm.rank(),
                    (s..e).map(|g| g as f64).collect(),
                );
                let mut y = PVec::zeros(layout.clone(), comm.rank());
                let src = IndexSet::stride(s, 1, e - s);
                let dst =
                    IndexSet::general((s..e).map(|g| dest_of(g, n_global)).collect::<Vec<_>>());
                let plan = VecScatter::create(comm, layout.clone(), &src, layout, &dst);
                plan.apply(comm, &x, &mut y, ScatterBackend::Datatype);
            },
        );
        let knobs = vec![
            ("procs".to_string(), n.to_string()),
            ("local_elems".to_string(), LOCAL_ELEMS.to_string()),
            ("backend".to_string(), "datatype".to_string()),
            ("flavor".to_string(), "auto".to_string()),
        ];
        let mut ledgered: Vec<Series> = Vec::new();
        ledgered.extend(latency);
        ledgered.extend(improvement);
        cli.observatory(
            "fig16_vecscatter",
            &knobs,
            &ledgered,
            Some(&metrics),
            Some(&map),
            Some(&history),
            Some(&traces),
        );
    }
}
