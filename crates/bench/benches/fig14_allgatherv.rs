//! Figure 14 — `MPI_Allgatherv` with one outlier message.
//!
//! (a) 64 processes; rank 0 contributes 1…16K doubles while everyone else
//!     contributes a single double; latency vs rank 0's message size.
//! (b) rank 0 contributes 32 KB (4096 doubles); latency vs process count.
//!
//! The baseline selects the ring algorithm from the *total* volume, so the
//! single large message crosses the ring in O(N) sequential hops. The
//! optimized implementation detects the outlier (Floyd–Rivest selection)
//! and switches to recursive doubling / dissemination, moving it along a
//! binomial tree.
//!
//! Paper result: both series grow, the baseline faster; ~20% improvement
//! at 64 processes / 32 KB.

use ncd_bench::{
    improvement_pct, relabel, report, time_phase, time_phase_traced, BenchCli, Series,
};
use ncd_core::{Comm, MpiConfig};
use ncd_simnet::{ClusterConfig, SimTime};

/// One allgatherv where rank 0 contributes `outlier_doubles` doubles and
/// everyone else a single double.
fn skewed_allgatherv(comm: &mut Comm, outlier_doubles: usize) {
    let mut counts = vec![8usize; comm.size()];
    counts[0] = outlier_doubles * 8;
    let me = comm.rank();
    let send = vec![me as u8; counts[me]];
    let mut recv = vec![0u8; counts.iter().sum()];
    comm.allgatherv(&send, &counts, &mut recv);
}

fn allgatherv_latency(nprocs: usize, outlier_doubles: usize, cfg: MpiConfig) -> SimTime {
    let (t, _) = time_phase(ClusterConfig::uniform(nprocs), cfg, 5, move |comm, _| {
        skewed_allgatherv(comm, outlier_doubles)
    });
    t
}

fn main() {
    // `--smoke` shrinks both sweeps so CI can gate every push; the
    // baseline store keys smoke and full snapshots separately.
    let cli = BenchCli::parse();
    let smoke = cli.smoke;
    let (procs_a, max_exp) = if smoke { (16, 4) } else { (64, 7) };

    // (a) Varying outlier size.
    let mut base_a = Series::new("MVAPICH2-0.9.5");
    let mut new_a = Series::new("MVAPICH2-New");
    let mut imp_a = Series::new("improvement-%");
    for exp in 0..=max_exp {
        let m = 4usize.pow(exp); // 1, 4, 16, ..., 16384 doubles
        let tb = allgatherv_latency(procs_a, m, MpiConfig::baseline());
        let tn = allgatherv_latency(procs_a, m, MpiConfig::optimized());
        base_a.push(m.to_string(), tb.as_us());
        new_a.push(m.to_string(), tn.as_us());
        imp_a.push(m.to_string(), improvement_pct(tb, tn));
    }
    // Gate the raw latencies only: improvement-% is higher-is-better and
    // derived from the gated series anyway.
    let series_a = [base_a, new_a, imp_a];
    cli.gate("fig14a_allgatherv_size", &series_a[..2]);
    report(
        "fig14a_allgatherv_size",
        "msg (doubles)",
        if smoke {
            "latency (usec), 16 procs"
        } else {
            "latency (usec), 64 procs"
        },
        &series_a,
    );

    // (b) Varying process count with a 32 KB outlier.
    let procs_b: &[usize] = if smoke {
        &[2, 4, 8, 16]
    } else {
        &[2, 4, 8, 16, 32, 64]
    };
    let mut base_b = Series::new("MVAPICH2-0.9.5");
    let mut new_b = Series::new("MVAPICH2-New");
    let mut imp_b = Series::new("improvement-%");
    for &n in procs_b {
        let tb = allgatherv_latency(n, 4096, MpiConfig::baseline());
        let tn = allgatherv_latency(n, 4096, MpiConfig::optimized());
        base_b.push(n.to_string(), tb.as_us());
        new_b.push(n.to_string(), tn.as_us());
        imp_b.push(n.to_string(), improvement_pct(tb, tn));
    }
    let series_b = [base_b, new_b, imp_b];
    cli.gate("fig14b_allgatherv_procs", &series_b[..2]);
    report(
        "fig14b_allgatherv_procs",
        "processes",
        "latency (usec), 32KB outlier",
        &series_b,
    );

    // Observatory pass: one fully traced run of the representative
    // configuration (the 32 KB outlier on the largest machine of the
    // sweep, selector left on auto), so the ledgered run carries the
    // decision audit, the critical path and the wait-state diagnosis the
    // differential engine attributes regressions with.
    if cli.wants_observatory() {
        let (_, _, metrics, map, history, traces) = time_phase_traced(
            ClusterConfig::uniform(procs_a),
            MpiConfig::optimized(),
            5,
            |comm, _| skewed_allgatherv(comm, 4096),
        );
        let knobs = vec![
            ("procs".to_string(), procs_a.to_string()),
            ("outlier_doubles".to_string(), "4096".to_string()),
            ("flavor".to_string(), "auto".to_string()),
        ];
        let mut ledgered = relabel("a", &series_a);
        ledgered.extend(relabel("b", &series_b));
        cli.observatory(
            "fig14_allgatherv",
            &knobs,
            &ledgered,
            Some(&metrics),
            Some(&map),
            Some(&history),
            Some(&traces),
        );
    }
}
