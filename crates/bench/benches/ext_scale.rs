//! ext_scale — collective scaling knees at process counts the event
//! scheduler unlocked.
//!
//! The paper's evaluation stops at 64–128 processes because that is where
//! its testbed stopped; the algorithmic crossovers it studies keep moving
//! with N. This bench sweeps `MPI_Allgatherv` to N = 1024 with the ring
//! and recursive-doubling algorithms pinned, and runs the §5.5 multigrid
//! application at 128 ranks — sizes the old threads-as-ranks runtime
//! could not reach in CI smoke time (1024 OS threads of stack plus real
//! context switches per simulated hop).
//!
//! What the sweep shows: the ring pays `(N-1)` serialized neighbour hops,
//! recursive doubling pays `ceil(log2 N)` rounds of doubling volume. For
//! a small fixed per-rank block the total volume is latency-dominated and
//! the ring's O(N) hop count loses by a factor that grows with N — the
//! knee small-N sweeps (fig14's 64 procs) can only hint at. For a large
//! per-rank block both move the same bytes and the gap closes to the
//! overhead term. The multigrid point pins the §5.5 claim at the paper's
//! full 128-process machine size.

use ncd_bench::{report, time_phase, time_phase_traced, BenchCli, Series};
use ncd_core::{AllgathervAlgorithm, Comm, MpiConfig};
use ncd_petsc::{richardson, KspSettings, LaplacianOp, Multigrid, PVec, ScatterBackend};
use ncd_simnet::{Cluster, ClusterConfig, SimTime};

/// Uniform allgatherv with the algorithm pinned: every rank contributes
/// `block` bytes.
fn uniform_allgatherv(comm: &mut Comm, algo: AllgathervAlgorithm, block: usize) {
    let counts = vec![block; comm.size()];
    let send = vec![comm.rank() as u8; block];
    let mut recv = vec![0u8; block * comm.size()];
    comm.allgatherv_with(algo, &send, &counts, &mut recv);
}

fn allgatherv_latency(nprocs: usize, algo: AllgathervAlgorithm, block: usize) -> SimTime {
    let (t, _) = time_phase(
        ClusterConfig::uniform(nprocs),
        MpiConfig::optimized(),
        1,
        move |comm, _| uniform_allgatherv(comm, algo, block),
    );
    t
}

const GRID: usize = 100;
const LEVELS: usize = 3;

/// One multigrid solve (setup excluded from the clock), as in fig17 but
/// at machine sizes that sweep past the paper's testbed.
fn mg_solve_time(nprocs: usize) -> SimTime {
    let out = Cluster::new(ClusterConfig::paper_testbed(nprocs)).run(|rank| {
        let mut comm = Comm::new(rank, MpiConfig::optimized());
        let h = 1.0 / GRID as f64;
        let mg = Multigrid::new(
            &mut comm,
            &[GRID, GRID, GRID],
            h,
            LEVELS,
            ScatterBackend::Datatype,
        );
        let da = mg.fine_da();
        let op = LaplacianOp::new(da, h);
        let mut b = PVec::zeros(da.global_layout().clone(), comm.rank());
        for (off, p) in da.owned_points().enumerate() {
            let (x, y, z) = (
                (p[0] as f64 + 0.5) * h,
                (p[1] as f64 + 0.5) * h,
                (p[2] as f64 + 0.5) * h,
            );
            b.local_mut()[off] = x + y + z;
        }
        let mut x = PVec::zeros(da.global_layout().clone(), comm.rank());
        comm.barrier();
        comm.rank_mut().reset_clock();
        let settings = KspSettings {
            rtol: 1e-6,
            max_it: 30,
            backend: ScatterBackend::Datatype,
            ..Default::default()
        };
        let res = richardson(&mut comm, &op, &mg, 1.0, &b, &mut x, &settings);
        assert!(res.converged, "MG solve did not converge: {res:?}");
        comm.rank_ref().now()
    });
    out.into_iter().max().expect("nonempty")
}

/// 8 doubles per rank: latency-dominated, where the ring's O(N) hop
/// count shows its knee.
const SMALL_BLOCK: usize = 64;
/// 2K doubles per rank: bandwidth-dominated, where the algorithms
/// converge to moving the same bytes.
const LARGE_BLOCK: usize = 16 * 1024;

fn main() {
    let cli = BenchCli::parse();
    let wall = std::time::Instant::now();
    let mut last_mark = 0.0f64;
    let mut mark = |label: &str| {
        let t = wall.elapsed().as_secs_f64();
        eprintln!(
            "[ext_scale wall] {label}: {:.1}s (total {t:.1}s)",
            t - last_mark
        );
        last_mark = t;
    };
    // The whole point of this bench is the big-N tail, so `--smoke` keeps
    // the issue's headline sizes (N = 1024 allgatherv, 128-rank
    // multigrid) and trims only the interior points and the
    // large-message sweep.
    let procs: &[usize] = if cli.smoke {
        &[64, 256, 1024]
    } else {
        &[64, 128, 256, 512, 1024]
    };

    // (a) Small fixed block: latency-bound knee.
    let mut ring_s = Series::new("ring");
    let mut rd_s = Series::new("recursive-doubling");
    let mut ratio = Series::new("ring/rd ratio");
    for &n in procs {
        let tr = allgatherv_latency(n, AllgathervAlgorithm::Ring, SMALL_BLOCK);
        let td = allgatherv_latency(n, AllgathervAlgorithm::RecursiveDoubling, SMALL_BLOCK);
        ring_s.push(n.to_string(), tr.as_us());
        rd_s.push(n.to_string(), td.as_us());
        ratio.push(n.to_string(), tr.as_ns() as f64 / td.as_ns() as f64);
    }
    mark("allgatherv small-block sweep");
    let series_a = [ring_s, rd_s, ratio];
    cli.gate("ext_scale_allgatherv_small", &series_a[..2]);
    report(
        "ext_scale_allgatherv_small",
        "processes",
        "latency (usec), 64 B/rank",
        &series_a,
    );

    // (b) Large block: bandwidth-bound, gap closes. Skipped in smoke —
    // it moves 16 MB per rank pair at N=1024 and adds nothing to the
    // gate the small-block sweep doesn't already pin.
    if !cli.smoke {
        let mut ring_l = Series::new("ring");
        let mut rd_l = Series::new("recursive-doubling");
        for &n in procs {
            let tr = allgatherv_latency(n, AllgathervAlgorithm::Ring, LARGE_BLOCK);
            let td = allgatherv_latency(n, AllgathervAlgorithm::RecursiveDoubling, LARGE_BLOCK);
            ring_l.push(n.to_string(), tr.as_us());
            rd_l.push(n.to_string(), td.as_us());
        }
        mark("allgatherv large-block sweep");
        let series_b = [ring_l, rd_l];
        cli.gate("ext_scale_allgatherv_large", &series_b);
        report(
            "ext_scale_allgatherv_large",
            "processes",
            "latency (usec), 16 KB/rank",
            &series_b,
        );
    }

    // (c) §5.5 multigrid at the paper's full machine size.
    let mg_procs: &[usize] = if cli.smoke { &[128] } else { &[32, 64, 128] };
    let mut mg = Series::new("MVAPICH2-New");
    for &n in mg_procs {
        let t = mg_solve_time(n);
        mg.push(n.to_string(), t.as_secs());
    }
    mark("multigrid sweep");
    let series_c = [mg];
    cli.gate("ext_scale_multigrid", &series_c);
    report(
        "ext_scale_multigrid",
        "processes",
        "execution time (sec)",
        &series_c,
    );

    // Observatory pass: one fully traced run of the smallest sweep point
    // (tracing all 1024 ranks would dominate the bench); the ledgered run
    // still carries the gated big-N series.
    if cli.wants_observatory() {
        let (_, _, metrics, map, history, traces) = time_phase_traced(
            ClusterConfig::uniform(procs[0]),
            MpiConfig::optimized(),
            1,
            |comm, _| uniform_allgatherv(comm, AllgathervAlgorithm::RecursiveDoubling, SMALL_BLOCK),
        );
        let knobs = vec![
            ("procs".to_string(), procs[0].to_string()),
            ("block_bytes".to_string(), SMALL_BLOCK.to_string()),
            ("algo".to_string(), "recursive_doubling".to_string()),
        ];
        let mut ledgered: Vec<Series> = Vec::new();
        ledgered.extend(series_a);
        ledgered.extend(series_c);
        cli.observatory(
            "ext_scale",
            &knobs,
            &ledgered,
            Some(&metrics),
            Some(&map),
            Some(&history),
            Some(&traces),
        );
    }
}
