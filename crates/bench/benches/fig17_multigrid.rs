//! Figure 17 — 3-D Laplacian multigrid solver application.
//!
//! The paper's application: a 100x100x100 grid with one degree of freedom,
//! solved by a three-level multigrid (Richardson iteration preconditioned
//! by a V-cycle) through the PETSc layer. Every smoother sweep, residual,
//! restriction and interpolation goes through DA ghost exchanges and
//! gather scatters — i.e. through `MPI_Alltoallw` with derived datatypes
//! when the `Datatype` backend is selected.
//!
//! Three implementations as in the paper: hand-tuned scatters, datatypes +
//! collectives over the baseline MPI ("MVAPICH2-0.9.5"), and over the
//! optimized framework ("MVAPICH2-New").
//!
//! Paper result: with the baseline the execution time stops improving
//! beyond 32 processes; the optimized implementation keeps scaling to 128
//! (≈90% improvement there) and sits within ~3% of hand-tuned (which leads
//! by ~10% at 4 processes).

use ncd_bench::{improvement_pct, report, time_phase_traced, BenchCli, Series};
use ncd_core::{Comm, MpiConfig};
use ncd_petsc::{richardson, KspSettings, LaplacianOp, Multigrid, PVec, ScatterBackend};
use ncd_simnet::{Cluster, ClusterConfig, SimTime};

const GRID: usize = 100;
const LEVELS: usize = 3;

/// One full multigrid solve (setup + Richardson/V-cycle) on this
/// communicator — the body both the timed sweep and the traced
/// observatory pass run.
fn mg_solve(comm: &mut Comm, backend: ScatterBackend) {
    let h = 1.0 / GRID as f64;
    let mg = Multigrid::new(comm, &[GRID, GRID, GRID], h, LEVELS, backend);
    let da = mg.fine_da();
    let op = LaplacianOp::new(da, h);
    let mut b = PVec::zeros(da.global_layout().clone(), comm.rank());
    for (off, p) in da.owned_points().enumerate() {
        let (x, y, z) = (
            (p[0] as f64 + 0.5) * h,
            (p[1] as f64 + 0.5) * h,
            (p[2] as f64 + 0.5) * h,
        );
        b.local_mut()[off] = x + y + z;
    }
    let mut x = PVec::zeros(da.global_layout().clone(), comm.rank());
    let settings = KspSettings {
        rtol: 1e-6,
        max_it: 30,
        backend,
        ..Default::default()
    };
    let res = richardson(comm, &op, &mg, 1.0, &b, &mut x, &settings);
    assert!(res.converged, "MG solve did not converge: {res:?}");
}

fn solve_time(nprocs: usize, cfg: MpiConfig, backend: ScatterBackend) -> (SimTime, usize) {
    let out = Cluster::new(ClusterConfig::paper_testbed(nprocs)).run(|rank| {
        let mut comm = Comm::new(rank, cfg.clone());
        let h = 1.0 / GRID as f64;
        let mg = Multigrid::new(&mut comm, &[GRID, GRID, GRID], h, LEVELS, backend);
        let da = mg.fine_da();
        let op = LaplacianOp::new(da, h);
        // Right-hand side varies linearly across the domain (the paper:
        // "the data grid varies the values of the variants (x, y, z)
        // uniformly across the grid in each dimension").
        let mut b = PVec::zeros(da.global_layout().clone(), comm.rank());
        for (off, p) in da.owned_points().enumerate() {
            let (x, y, z) = (
                (p[0] as f64 + 0.5) * h,
                (p[1] as f64 + 0.5) * h,
                (p[2] as f64 + 0.5) * h,
            );
            b.local_mut()[off] = x + y + z;
        }
        let mut x = PVec::zeros(da.global_layout().clone(), comm.rank());
        // Setup (DA + plans) done; time the solve only.
        comm.barrier();
        comm.rank_mut().reset_clock();
        let settings = KspSettings {
            rtol: 1e-6,
            max_it: 30,
            backend,
            ..Default::default()
        };
        let res = richardson(&mut comm, &op, &mg, 1.0, &b, &mut x, &settings);
        assert!(res.converged, "MG solve did not converge: {res:?}");
        (comm.rank_ref().now(), res.iterations)
    });
    let iters = out[0].1;
    let tmax = out.into_iter().map(|(t, _)| t).max().expect("nonempty");
    (tmax, iters)
}

fn main() {
    let cli = BenchCli::parse();
    let procs: &[usize] = if cli.smoke {
        &[4, 8, 16]
    } else {
        &[4, 8, 16, 32, 64, 128]
    };
    let mut hand = Series::new("hand-tuned");
    let mut base = Series::new("MVAPICH2-0.9.5");
    let mut new = Series::new("MVAPICH2-New");
    let mut imp_new = Series::new("imp-new-%");
    let mut imp_hand = Series::new("imp-hand-%");
    for &n in procs {
        let (th, it_h) = solve_time(n, MpiConfig::optimized(), ScatterBackend::HandTuned);
        let (tb, it_b) = solve_time(n, MpiConfig::baseline(), ScatterBackend::Datatype);
        let (tn, it_n) = solve_time(n, MpiConfig::optimized(), ScatterBackend::Datatype);
        assert_eq!(it_h, it_b, "implementations must run identical numerics");
        assert_eq!(it_h, it_n, "implementations must run identical numerics");
        hand.push(n.to_string(), th.as_secs());
        base.push(n.to_string(), tb.as_secs());
        new.push(n.to_string(), tn.as_secs());
        imp_new.push(n.to_string(), improvement_pct(tb, tn));
        imp_hand.push(n.to_string(), improvement_pct(tb, th));
        eprintln!("n={n}: solver iterations = {it_h}");
    }
    let time = [hand, base, new];
    let improvement = [imp_new, imp_hand];
    report(
        "fig17a_multigrid",
        "processes",
        "execution time (sec)",
        &time,
    );
    report(
        "fig17b_multigrid_improvement",
        "processes",
        "% improvement over MVAPICH2-0.9.5",
        &improvement,
    );

    // Observatory pass: one traced solve on the smallest machine of the
    // sweep (the solve itself is the expensive part; the trace only needs
    // a representative ghost-exchange pattern), optimized datatype path.
    if cli.wants_observatory() {
        let n = procs[0];
        let (_, _, metrics, map, history, traces) = time_phase_traced(
            ClusterConfig::paper_testbed(n),
            MpiConfig::optimized(),
            1,
            |comm, _| mg_solve(comm, ScatterBackend::Datatype),
        );
        let knobs = vec![
            ("procs".to_string(), n.to_string()),
            ("grid".to_string(), format!("{GRID}^3")),
            ("levels".to_string(), LEVELS.to_string()),
            ("backend".to_string(), "datatype".to_string()),
        ];
        let mut ledgered: Vec<Series> = Vec::new();
        ledgered.extend(time);
        ledgered.extend(improvement);
        cli.observatory(
            "fig17_multigrid",
            &knobs,
            &ledgered,
            Some(&metrics),
            Some(&map),
            Some(&history),
            Some(&traces),
        );
    }
}
