//! Offline stand-in for the subset of `criterion` this workspace uses. The
//! container building this repo has no network access to crates.io, so the
//! workspace vendors the API surface its kernel benches need: groups,
//! `bench_with_input`, throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a short warmup, then `sample_size`
//! timed samples, reporting the fastest (least noisy) sample per iteration.
//! No statistics, plots, or baselines; the benches exist to show the real
//! kernels are fast, not to detect 1% regressions.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: self.sample_size,
            throughput: None,
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        // Warmup sample (discarded), then `sample_size` timed samples; keep
        // the fastest to damp scheduler noise.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher, input);
        let mut best_ns = f64::INFINITY;
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut bencher, input);
            if bencher.iters > 0 {
                let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
                best_ns = best_ns.min(per_iter);
            }
        }
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if best_ns.is_finite() => {
                format!(
                    "  {:8.1} MiB/s",
                    b as f64 / best_ns * 1e9 / (1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(e)) if best_ns.is_finite() => {
                format!("  {:8.1} Melem/s", e as f64 / best_ns * 1e9 / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "  {}/{}/{}: {:12.1} ns/iter{}",
            self.name, id.function, id.parameter, best_ns, rate
        );
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time the closure over a small fixed batch, accumulating elapsed time
    /// and iteration count for the per-iteration estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const BATCH: u64 = 3;
        let start = Instant::now();
        for _ in 0..BATCH {
            hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Bytes(1024));
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("sum", 8), &8usize, |b, &n| {
            calls += 1;
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
        // warmup + sample_size invocations of the setup closure
        assert_eq!(calls, 4);
    }

    criterion_group!(smoke_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("noop");
        g.bench_with_input(BenchmarkId::new("id", 0), &(), |b, _| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        smoke_group();
    }
}
