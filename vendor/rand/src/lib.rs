//! Offline stand-in for the subset of `rand` 0.8 this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen_range` over
//! primitive ranges. The container building this repo has no network
//! access to crates.io, so the workspace vendors the API surface it needs.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than rand's ChaCha-based `StdRng`, which is fine here: the
//! simulated cluster only requires that the stream be deterministic for a
//! given seed, not that it match any particular upstream generator.

use std::ops::Range;

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `u64` convenience constructor is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open, as in rand 0.8).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform u64 in `[0, n)` without modulo bias (Lemire's method would be
/// fancier; rejection sampling on the top bits is simple and exact).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0.0f64..1500.0);
            assert!((0.0..1500.0).contains(&v));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(3usize..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX / 2)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX / 2)).collect();
        assert_ne!(va, vb);
    }
}
