//! Offline stand-in for the subset of `proptest` this workspace uses. The
//! container building this repo has no network access to crates.io, so the
//! workspace vendors the API surface its property tests need: strategies
//! (ranges, tuples, `Just`, `prop_oneof!`, `prop_map`, `prop_recursive`,
//! `collection::vec`, `any::<bool>()`), the `proptest!` test macro, and the
//! `prop_assert*` family.
//!
//! Semantics differ from upstream in one deliberate way: failing cases are
//! reported but **not shrunk**. Every case is generated from a fixed seed,
//! so failures reproduce deterministically across runs, which is what the
//! repo's CI needs from these tests.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A source of random values of one type.
    ///
    /// Unlike upstream there is no value tree: `sample` draws a finished
    /// value directly, and failing inputs are not shrunk.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Build a depth-bounded recursive strategy: `recurse` receives a
        /// strategy for the shallower levels and wraps it one level deeper.
        /// The result samples uniformly over all unrolled depths, so leaves
        /// and deep nestings both occur.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
            for _ in 0..depth {
                let shallower = Union::new(levels.clone()).boxed();
                levels.push(recurse(shallower).boxed());
            }
            Union::new(levels).boxed()
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Uniform choice among several strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0usize..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    /// Half-open numeric ranges are strategies, as upstream.
    impl<T> Strategy for Range<T>
    where
        T: Copy + 'static,
        Range<T>: rand::SampleRange<T>,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($( self.$idx.sample(rng), )+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Permitted lengths for a generated collection.
    #[derive(Clone, Debug)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A` (`any::<bool>()` etc.).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

pub mod test_runner {
    use crate::strategy::Strategy;
    use rand::SeedableRng;
    use std::fmt;

    /// The RNG every strategy samples from.
    pub type TestRng = rand::rngs::StdRng;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed test case (no shrinking: the failure aborts the test with
    /// the case number, which reproduces because the seed is fixed).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    pub struct TestRunner {
        config: Config,
        rng: TestRng,
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            // Fixed seed: failures reproduce run-to-run and machine-to-
            // machine.
            TestRunner {
                config,
                rng: TestRng::seed_from_u64(0x_5EED_CAFE_F00D_u64),
            }
        }

        /// Sample `config.cases` inputs and run `test` on each, panicking
        /// on the first failure.
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
        ) {
            for case in 0..self.config.cases {
                let value = strategy.sample(&mut self.rng);
                if let Err(e) = test(value) {
                    panic!(
                        "proptest: case {}/{} failed: {}",
                        case + 1,
                        self.config.cases,
                        e
                    );
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each body runs once per sampled case inside a
/// closure returning `Result<(), TestCaseError>`, which is what lets the
/// `prop_assert*` macros abort a case with `return Err(..)`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $p:pat in $s:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __strategy = ( $( $s, )+ );
                let mut __runner = $crate::test_runner::TestRunner::new(__config);
                __runner.run(
                    &__strategy,
                    |( $( $p, )+ )| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $p:pat in $s:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config(<$crate::test_runner::Config as ::std::default::Default>::default())]
            $(
                $(#[$meta])*
                fn $name( $( $p in $s ),+ ) $body
            )*
        }
    };
}

/// Uniform choice among strategy arms (all arms must yield the same type).
#[macro_export]
macro_rules! prop_oneof {
    ( $( $arm:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

/// Assert a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert!(
            ($left) == ($right),
            "assertion failed: `left == right`: {} vs {}",
            stringify!($left),
            stringify!($right)
        )
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        $crate::prop_assert!(
            ($left) == ($right),
            "assertion failed: `{} == {}`: {}",
            stringify!($left),
            stringify!($right),
            format!($($fmt)+)
        )
    };
}

/// Assert two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert!(
            ($left) != ($right),
            "assertion failed: `left != right`: {} vs {}",
            stringify!($left),
            stringify!($right)
        )
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        $crate::prop_assert!(
            ($left) != ($right),
            "assertion failed: `{} != {}`: {}",
            stringify!($left),
            stringify!($right),
            format!($($fmt)+)
        )
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples(x in 0u64..100, (a, b) in (0usize..4, -3i64..3)) {
            prop_assert!(x < 100);
            prop_assert!(a < 4);
            prop_assert!((-3..3).contains(&b));
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(0u8..10, 3..7), w in crate::collection::vec(0u8..10, 5)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(w.len(), 5);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_and_map_and_recursive(n in prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|v| v * 2)]) {
            prop_assert!(n == 1 || n == 2 || (20..40).contains(&n), "n = {}", n);
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf,
        Node(Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf => 0,
            Tree::Node(inner) => 1 + depth(inner),
        }
    }

    proptest! {
        #[test]
        fn recursion_is_depth_bounded(t in Just(Tree::Leaf).prop_recursive(3, 8, 1, |inner| {
            inner.prop_map(|t| Tree::Node(Box::new(t)))
        })) {
            prop_assert!(depth(&t) <= 3, "depth {}", depth(&t));
        }
    }

    #[test]
    fn failing_case_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(4));
            runner.run(&(0u64..10,), |(v,)| {
                crate::prop_assert!(v > 1_000, "v was {}", v);
                Ok(())
            });
        });
        assert!(result.is_err());
    }
}
