//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `channel::{unbounded, Sender, Receiver}`. The container building this
//! repo has no network access to crates.io, so the workspace vendors the
//! exact API surface it needs over `std::sync::mpsc`, which has identical
//! semantics for the single-consumer unbounded channels the simulated
//! cluster runtime relies on (eager sends, FIFO per sender/receiver pair,
//! disconnect errors when the peer hangs up).

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel (clonable, like crossbeam's).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; errors only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives; errors when every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn fifo_and_clone() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn disconnect_is_an_error() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
