//! The paper's future-work study (§7): adaptive-mesh (FLASH-style)
//! workloads create *compute skew* between processes — ranks owning the
//! refined "area of interest" do several times more work per step. The
//! paper conjectures that the upper layer's load granularity interacts
//! with the MPI layer's collective design; this example demonstrates it.
//!
//! A 1-D chain of subdomains carries a moving refinement hotspot: ranks
//! near the hotspot compute at `2^level` cost and exchange proportionally
//! larger boundary data with their neighbours via `MPI_Alltoallw`. Under
//! the round-robin schedule, every rank synchronizes with every other
//! rank each step, so the hotspot's slowness propagates to the whole
//! machine; the binned schedule confines it to the hotspot's neighbours.
//!
//! Run with: `cargo run --release --example amr_skew`

use nucomm::core::{Comm, MpiConfig, WPeer};
use nucomm::datatype::Datatype;
use nucomm::simnet::{Cluster, ClusterConfig, SimTime};

const RANKS: usize = 32;
const STEPS: usize = 20;
const BASE_CELLS: u64 = 2_000;

/// Refinement level of `rank` when the hotspot is at `spot`: level 2 at
/// the hotspot, 1 beside it, 0 elsewhere.
fn level(rank: usize, spot: usize) -> u32 {
    let d = rank.abs_diff(spot).min(RANKS - rank.abs_diff(spot));
    match d {
        0 => 2,
        1 => 1,
        _ => 0,
    }
}

fn run(cfg: MpiConfig) -> SimTime {
    let out = Cluster::new(ClusterConfig::paper_testbed(RANKS)).run(|rank| {
        let mut comm = Comm::new(rank, cfg.clone());
        let me = comm.rank();
        let n = comm.size();
        comm.barrier();
        comm.rank_mut().reset_clock();
        for step in 0..STEPS {
            let spot = (step * 3) % n; // the area of interest moves
            let my_level = level(me, spot);
            // Refined ranks integrate 4x the cells.
            comm.rank_mut().compute_flops(BASE_CELLS << (2 * my_level));

            // Boundary exchange with ring neighbours; refined boundaries
            // carry proportionally more data.
            let succ = (me + 1) % n;
            let pred = (me + n - 1) % n;
            let cells = 16usize << (2 * my_level);
            let dt = Datatype::contiguous(cells, &Datatype::double()).expect("boundary");
            let empty = Datatype::contiguous(0, &Datatype::double()).expect("empty");
            let mut sends: Vec<WPeer> = (0..n).map(|_| WPeer::new(0, 0, empty.clone())).collect();
            let mut recvs = sends.clone();
            sends[succ] = WPeer::new(0, 1, dt.clone());
            sends[pred] = WPeer::new(0, 1, dt.clone());
            let succ_cells = 16usize << (2 * level(succ, spot));
            let pred_cells = 16usize << (2 * level(pred, spot));
            recvs[succ] = WPeer::new(
                0,
                1,
                Datatype::contiguous(succ_cells, &Datatype::double()).expect("succ"),
            );
            recvs[pred] = WPeer::new(
                succ_cells * 8,
                1,
                Datatype::contiguous(pred_cells, &Datatype::double()).expect("pred"),
            );
            let sendbuf = vec![me as u8; cells * 8];
            let mut recvbuf = vec![0u8; (succ_cells + pred_cells) * 8];
            comm.alltoallw(&sendbuf, &sends, &mut recvbuf, &recvs);
        }
        comm.rank_ref().now()
    });
    out.into_iter().max().expect("nonempty")
}

fn main() {
    println!(
        "AMR-style moving hotspot: {RANKS} ranks, {STEPS} steps, 4x work per refinement level\n"
    );
    let tb = run(MpiConfig::baseline());
    let tn = run(MpiConfig::optimized());
    println!("round-robin alltoallw (baseline):  {tb}");
    println!("three-bin alltoallw   (optimized): {tn}");
    println!(
        "improvement: {:.1}%",
        100.0 * (tb.as_ns() as f64 - tn.as_ns() as f64) / tb.as_ns() as f64
    );
    println!("\nThe baseline couples every rank to the hotspot through its");
    println!("zero-byte round-robin synchronizations; the binned schedule lets");
    println!("unrefined ranks run ahead. See benches/ext_amr_skew.rs for the");
    println!("refinement-depth sweep.");
}
