//! Ghost-point exchange on a 2-D distributed array: star vs box stencils.
//!
//! Reproduces the paper's Figure 2/3 discussion: a process grid over a
//! structured grid, where each rank needs its neighbours' bordering points
//! (ghost points) to evaluate a local stencil. A star stencil exchanges
//! face regions only; a box stencil also needs edge/corner regions — and
//! the per-neighbour communication volumes are inherently *nonuniform*
//! (faces carry far more data than corners).
//!
//! Run with: `cargo run --release --example ghost_exchange`

use nucomm::core::{Comm, MpiConfig};
use nucomm::petsc::{DistributedArray, ScatterBackend, StencilKind};
use nucomm::simnet::{Cluster, ClusterConfig};

fn main() {
    const N: usize = 64;
    const RANKS: usize = 16;

    for stencil in [StencilKind::Star, StencilKind::Box] {
        let out = Cluster::new(ClusterConfig::uniform(RANKS)).run(|rank| {
            let mut comm = Comm::new(rank, MpiConfig::optimized());
            let da = DistributedArray::new(&mut comm, &[N, N], 1, stencil, 1);

            // Fill the global vector with a recognizable function.
            let mut g = da.create_global_vec();
            for (off, p) in da.owned_points().enumerate() {
                g.local_mut()[off] = (p[0] * 1000 + p[1]) as f64;
            }

            // Exchange ghosts and verify every ghost value.
            let mut l = da.create_local_vec();
            da.global_to_local(&mut comm, &g, &mut l, ScatterBackend::Datatype);
            let (gs, gl) = da.ghosted();
            let ((os, ol), mut ghosts_checked) = (da.owned(), 0usize);
            for j in gs[1]..gs[1] + gl[1] {
                for i in gs[0]..gs[0] + gl[0] {
                    let p = [i, j, 0];
                    let owned = i >= os[0] && i < os[0] + ol[0] && j >= os[1] && j < os[1] + ol[1];
                    if !owned && da.point_in_local_form(p) {
                        let v = l.local()[da.local_vec_offset(p, 0)];
                        assert_eq!(v, (i * 1000 + j) as f64, "ghost {p:?}");
                        ghosts_checked += 1;
                    }
                }
            }
            (
                ghosts_checked,
                da.ghost_scatter().remote_recv_elems(),
                da.ghost_scatter().num_neighbors(),
                comm.rank_ref().now(),
            )
        });
        println!("--- {stencil:?} stencil, {N}x{N} grid on {RANKS} ranks ---");
        let interior = &out[5]; // an interior rank of the 4x4 process grid
        println!(
            "  interior rank: {} ghost points from {} neighbours (all verified)",
            interior.1, interior.2
        );
        let total: usize = out.iter().map(|o| o.1).sum();
        let tmax = out.iter().map(|o| o.3).max().expect("nonempty");
        println!("  cluster-wide ghost volume: {total} doubles, exchange done at {tmax}");
    }
    println!("\nBox stencils move strictly more ghost data than star stencils, and");
    println!("their per-neighbour volumes differ wildly (faces >> corners) — the");
    println!("nonuniform-volume pattern the paper's alltoallw redesign targets.");
}
