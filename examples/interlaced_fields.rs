//! The paper's introductory scenario (§2.1): "each grid point might have
//! multiple field values (e.g., pressure, temperature, x-velocity and
//! y-velocity). These values get stored interlaced in the PETSc vector."
//!
//! This example runs a ghost exchange on a 2-D distributed array with four
//! interlaced degrees of freedom, then extracts a single field from the
//! interlaced storage with a strided derived datatype — exactly the kind
//! of noncontiguous access the paper's datatype engine work targets.
//!
//! Run with: `cargo run --release --example interlaced_fields`

use nucomm::core::{Comm, MpiConfig};
use nucomm::datatype::{pack_all, Datatype};
use nucomm::petsc::{DistributedArray, ScatterBackend, StencilKind};
use nucomm::simnet::{Cluster, ClusterConfig};

const FIELDS: [&str; 4] = ["pressure", "temperature", "x-velocity", "y-velocity"];

fn main() {
    const N: usize = 16;
    const RANKS: usize = 4;

    let out = Cluster::new(ClusterConfig::uniform(RANKS)).run(|rank| {
        let mut comm = Comm::new(rank, MpiConfig::optimized());
        let da = DistributedArray::new(&mut comm, &[N, N], 4, StencilKind::Star, 1);

        // Fill the four interlaced fields with distinguishable values.
        let mut g = da.create_global_vec();
        for (idx, p) in da.owned_points().enumerate() {
            for c in 0..4 {
                g.local_mut()[idx * 4 + c] = (c * 10_000 + p[0] * 100 + p[1]) as f64;
            }
        }

        // Ghost exchange of the full interlaced data.
        let mut l = da.create_local_vec();
        da.global_to_local(&mut comm, &g, &mut l, ScatterBackend::Datatype);

        // Verify ghost values of every field.
        let (gs, gl) = da.ghosted();
        let mut checked = 0;
        for j in gs[1]..gs[1] + gl[1] {
            for i in gs[0]..gs[0] + gl[0] {
                let p = [i, j, 0];
                if da.point_in_local_form(p) {
                    for c in 0..4 {
                        let v = l.local()[da.local_vec_offset(p, c)];
                        assert_eq!(v, (c * 10_000 + i * 100 + j) as f64);
                        checked += 1;
                    }
                }
            }
        }

        // Extract one field from the interlaced local storage with a
        // strided datatype: count points, blocklen 1 double, stride 4.
        let npoints = l.local_size() / 4;
        let field_type = Datatype::vector(npoints, 1, 4, &Datatype::double()).expect("field type");
        let bytes: Vec<u8> = l.local().iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut extracted = Vec::with_capacity(4);
        for c in 0..4 {
            let packed = pack_all(&field_type, 1, &bytes[c * 8..]).expect("extract field");
            let vals: Vec<f64> = packed
                .chunks_exact(8)
                .map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
                .collect();
            extracted.push(vals);
        }
        // Spot-check: the extracted pressure of the first local point.
        assert_eq!(extracted[0][0], l.local()[0]);
        assert_eq!(extracted[1][0], l.local()[1]);
        (checked, npoints, comm.rank_ref().now())
    });

    println!(
        "{N}x{N} grid, 4 interlaced fields ({}), {RANKS} ranks\n",
        FIELDS.join(", ")
    );
    for (rank, (checked, npoints, t)) in out.iter().enumerate() {
        println!(
            "rank {rank}: verified {checked} interlaced values over {npoints} local points, done at {t}"
        );
    }
    println!("\nEach field extraction used a vector datatype (stride 4 doubles) over");
    println!("the interlaced storage — one `pack` call instead of a hand-written loop.");
}
