//! Nonuniform allgatherv: watch the optimized implementation detect an
//! outlier in the communication-volume set and switch algorithms.
//!
//! One rank contributes a large message while everyone else contributes a
//! single double — the workload of the paper's Figure 14. The baseline
//! picks the ring algorithm from the *total* volume and serializes the
//! large message across O(N) hops; the optimized implementation runs the
//! paper's outlier-ratio test (two linear-time Floyd–Rivest selections)
//! and moves the outlier along a binomial tree instead.
//!
//! Run with: `cargo run --release --example outlier_allgatherv`

use nucomm::core::{detect_outliers, Comm, MpiConfig, VolumeShape};
use nucomm::simnet::{Cluster, ClusterConfig, SimTime};

fn gather(nprocs: usize, outlier_bytes: usize, cfg: MpiConfig) -> (SimTime, String) {
    let out = Cluster::new(ClusterConfig::uniform(nprocs)).run(|rank| {
        let mut comm = Comm::new(rank, cfg.clone());
        let mut counts = vec![8usize; nprocs];
        counts[0] = outlier_bytes;
        let algo = comm.allgatherv_choose(&counts);
        let me = comm.rank();
        let send = vec![me as u8; counts[me]];
        let mut recv = vec![0u8; counts.iter().sum()];
        comm.barrier();
        comm.rank_mut().reset_clock();
        comm.allgatherv(&send, &counts, &mut recv);
        // Verify: every block holds its sender's rank byte.
        let mut off = 0;
        for (r, &c) in counts.iter().enumerate() {
            assert!(recv[off..off + c].iter().all(|&b| b == r as u8));
            off += c;
        }
        (comm.rank_ref().now(), format!("{algo:?}"))
    });
    let t = out.iter().map(|(t, _)| *t).max().expect("nonempty");
    (t, out[0].1.clone())
}

fn main() {
    let n = 64;
    let outlier = 32 * 1024;

    let mut vols = vec![8usize; n];
    vols[0] = outlier;
    println!(
        "volume set: one rank at {outlier} B, {} ranks at 8 B -> {:?}",
        n - 1,
        detect_outliers(&vols, 0.9, 8.0)
    );
    assert_eq!(detect_outliers(&vols, 0.9, 8.0), VolumeShape::Outliers);

    let (tb, algo_b) = gather(n, outlier, MpiConfig::baseline());
    let (tn, algo_n) = gather(n, outlier, MpiConfig::optimized());
    println!("baseline  (MVAPICH2-0.9.5): {algo_b:<18} {tb}");
    println!("optimized (MVAPICH2-New)  : {algo_n:<18} {tn}");
    println!(
        "improvement: {:.1}%",
        100.0 * (tb.as_ns() as f64 - tn.as_ns() as f64) / tb.as_ns() as f64
    );

    // Uniform volumes: both flavors agree the ring is right.
    let (tu_b, algo_ub) = gather(n, 8, MpiConfig::baseline());
    let (tu_n, algo_un) = gather(n, 8, MpiConfig::optimized());
    println!("\nuniform volumes: baseline {algo_ub} ({tu_b}), optimized {algo_un} ({tu_n})");
}
