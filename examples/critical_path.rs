//! Critical-path analysis of the Fig 14 outlier-allgatherv scenario:
//! *why* is the ring algorithm slow when one rank contributes a large
//! block?
//!
//! Eight ranks run `MPI_Allgatherv` where rank 0 contributes 4096 doubles
//! (32 KB) and everyone else a single double — the paper's §4.2.1
//! nonuniform pattern. The ring algorithm forwards the outlier block
//! through N−1 sequential hops, so the happens-before chain of that one
//! block *is* the critical path: the analyzer reports Θ(N) message hops.
//! Recursive doubling moves it along a binomial tree: Θ(log N) hops and a
//! proportionally shorter makespan.
//!
//! Output: top-k critical-path table per algorithm, the per-op wait/skew
//! attribution, a PETSc `-log_view`-style imbalance table across ranks,
//! and machine-readable artifacts under `target/analysis/` plus a Chrome
//! trace under `target/figures/`.
//!
//! Run with: `cargo run --release --example critical_path`

use nucomm::core::{AllgathervAlgorithm, Comm, MpiConfig};
use nucomm::simnet::{
    attribute_rounds, imbalance_report, write_chrome_trace, Cluster, ClusterConfig, HbGraph,
    Profiler, TraceEvent,
};

const RANKS: usize = 8;
const OUTLIER_DOUBLES: usize = 4096; // 32 KB from rank 0

fn run(algo: AllgathervAlgorithm) -> (Vec<Vec<TraceEvent>>, Vec<Profiler>) {
    let out = Cluster::new(ClusterConfig::paper_testbed(RANKS)).run(move |rank| {
        let mut comm = Comm::new(rank, MpiConfig::baseline());
        comm.barrier();
        comm.rank_mut().reset_clock();
        comm.rank_mut().enable_tracing();
        comm.rank_mut().enable_profiling();

        let me = comm.rank();
        let mut counts = vec![8usize; RANKS];
        counts[0] = OUTLIER_DOUBLES * 8;
        let send = vec![me as u8; counts[me]];
        let mut recv = vec![0u8; counts.iter().sum()];
        comm.rank_mut().stage_begin("allgatherv");
        comm.allgatherv_with(algo, &send, &counts, &mut recv);
        comm.rank_mut().stage_end("allgatherv");
        (comm.rank_mut().take_trace(), comm.rank_mut().take_profile())
    });
    out.into_iter().unzip()
}

fn main() {
    println!(
        "allgatherv critical path, {RANKS} ranks, rank 0 contributes {OUTLIER_DOUBLES} doubles\n"
    );
    for (algo, slug) in [
        (AllgathervAlgorithm::Ring, "ring"),
        (AllgathervAlgorithm::RecursiveDoubling, "recursive_doubling"),
    ] {
        let (traces, profiles) = run(algo);
        let graph = HbGraph::build(&traces);
        let path = graph.critical_path();
        let attr = attribute_rounds(&traces);

        println!("=== {} ===", algo.label());
        println!("{}", path.render(12));
        println!("wait/skew attribution (per op, spread across ranks):");
        println!("{}", attr.render());
        println!("stage imbalance across ranks (-log_view style):");
        println!("{}", imbalance_report(&profiles));

        let json = format!("target/analysis/critical_path_{slug}.json");
        nucomm::simnet::export::write_analysis_json(&json, &path, &attr)
            .expect("write analysis json");
        let trace = format!("target/figures/critical_path_{slug}_trace.json");
        write_chrome_trace(&trace, &traces).expect("write chrome trace");
        println!("artifacts: {json}, {trace}\n");
    }
    println!(
        "The ring forwards rank 0's 32 KB block through {} sequential",
        RANKS - 1
    );
    println!("hops — every one a message edge on the critical path — while");
    println!("recursive doubling needs only log2({RANKS}) = 3 exchange rounds.");
}
