//! Communication/computation overlap with the split ghost exchange.
//!
//! The request-based core lets `VecScatterBegin` post its receives and
//! launch its sends, hand control back to the application, and only
//! reconcile in `VecScatterEnd`. A stencil code exploits this by updating
//! the rows that need no ghost values while the ghost traffic is on the
//! wire — the classic PETSc overlap idiom
//! (`DMGlobalToLocalBegin` / compute interior / `DMGlobalToLocalEnd`).
//!
//! This example measures the same workload — one 2-D star-stencil ghost
//! exchange plus a fixed slab of local compute, repeated — in both forms
//! on the simulated clock, sweeping how much compute is available to hide
//! the communication behind.
//!
//! Run with: `cargo run --release --example overlap`

use nucomm::core::{Comm, MpiConfig};
use nucomm::petsc::{DistributedArray, ScatterBackend, StencilKind};
use nucomm::simnet::{Cluster, ClusterConfig, SimTime};

const N: usize = 96;
const RANKS: usize = 16;
const REPS: usize = 20;

/// Slowest rank's simulated finish time for `REPS` rounds of ghost
/// exchange + compute, overlapped (begin / compute / end) or sequential
/// (apply, then compute).
fn makespan(flops: u64, overlap: bool) -> SimTime {
    let out = Cluster::new(ClusterConfig::uniform(RANKS)).run(move |rank| {
        let mut comm = Comm::new(rank, MpiConfig::optimized());
        let da = DistributedArray::new(&mut comm, &[N, N], 1, StencilKind::Star, 1);
        let mut g = da.create_global_vec();
        for (off, p) in da.owned_points().enumerate() {
            g.local_mut()[off] = (p[0] * 1000 + p[1]) as f64;
        }
        let mut l = da.create_local_vec();
        comm.barrier();
        comm.rank_mut().reset_clock();
        for _ in 0..REPS {
            if overlap {
                let h = da.global_to_local_begin(&mut comm, &g, &mut l, ScatterBackend::HandTuned);
                // Interior work proceeds while ghosts are in flight.
                comm.rank_mut().compute_flops(flops);
                da.global_to_local_end(&mut comm, h, &mut l);
            } else {
                da.global_to_local(&mut comm, &g, &mut l, ScatterBackend::HandTuned);
                comm.rank_mut().compute_flops(flops);
            }
        }
        comm.rank_ref().now()
    });
    out.into_iter().max().expect("nonempty cluster")
}

fn main() {
    println!("--- split ghost exchange: {N}x{N} star DA on {RANKS} ranks, {REPS} rounds ---");
    println!(
        "{:>16}{:>16}{:>16}{:>14}",
        "interior flops", "sequential", "overlapped", "hidden"
    );
    for flops in [0u64, 500_000, 1_000_000, 2_000_000, 5_000_000] {
        let seq = makespan(flops, false);
        let ovl = makespan(flops, true);
        let hidden = SimTime::from_ns(seq.as_ns().saturating_sub(ovl.as_ns()));
        println!(
            "{flops:>16}{:>16}{:>16}{:>14}",
            seq.to_string(),
            ovl.to_string(),
            hidden.to_string()
        );
    }
    println!("\nWith no interior work there is nothing to hide behind and the forms");
    println!("cost the same. Once any interior slab exists, the overlapped form");
    println!("hides the ghost traffic's in-flight portion — the wait for neighbour");
    println!("data to cross the wire — while pack/unpack stays on the CPU and is");
    println!("paid either way. The absolute saving is the exchange's wire time.");
}
