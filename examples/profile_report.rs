//! A PETSc `-log_view`-style profiling report for the paper's multigrid
//! application (§5.5, Figure 17) on a reduced grid: every V-cycle level
//! runs inside nested profiling stages (`mg_vcycle_l0/smooth`,
//! `.../restrict`, ...), and the per-stage inclusive/exclusive simulated
//! times are merged across ranks into one table — the analogue of running
//! PETSc with `-log_view`.
//!
//! Run with: `cargo run --release --example profile_report`

use nucomm::core::{Comm, MpiConfig};
use nucomm::petsc::{richardson, KspSettings, LaplacianOp, Multigrid, PVec, ScatterBackend};
use nucomm::simnet::{Cluster, ClusterConfig, MetricsRegistry, Profiler};

const GRID: usize = 24;
const RANKS: usize = 8;

fn main() {
    println!("-∇²u = f on a {GRID}³ grid, 3-level multigrid, {RANKS} simulated ranks");
    println!("(stage times are simulated nanoseconds, merged over all ranks)\n");

    for (label, cfg, backend) in [
        (
            "MVAPICH2-0.9.5 + datatypes",
            MpiConfig::baseline(),
            ScatterBackend::Datatype,
        ),
        (
            "MVAPICH2-New + datatypes",
            MpiConfig::optimized(),
            ScatterBackend::Datatype,
        ),
    ] {
        let out = Cluster::new(ClusterConfig::paper_testbed(RANKS)).run(|rank| {
            rank.enable_profiling();
            rank.enable_metrics();
            let mut comm = Comm::new(rank, cfg.clone());
            let h = 1.0 / GRID as f64;
            let mg = Multigrid::new(&mut comm, &[GRID, GRID, GRID], h, 3, backend);
            let da = mg.fine_da();
            let op = LaplacianOp::new(da, h);

            let mut b = PVec::zeros(da.global_layout().clone(), comm.rank());
            for (off, p) in da.owned_points().enumerate() {
                b.local_mut()[off] = (p[0] as f64 + p[1] as f64 + p[2] as f64 + 1.5) * h;
            }
            let mut x = PVec::zeros(da.global_layout().clone(), comm.rank());
            comm.barrier();
            comm.rank_mut().reset_clock();
            comm.rank_mut().stage_begin("solve");
            let res = richardson(
                &mut comm,
                &op,
                &mg,
                1.0,
                &b,
                &mut x,
                &KspSettings {
                    rtol: 1e-8,
                    max_it: 40,
                    backend,
                    ..Default::default()
                },
            );
            comm.rank_mut().stage_end("solve");
            assert!(res.converged, "solver did not converge: {res:?}");
            (
                comm.rank_mut().take_profile(),
                comm.rank_mut().take_metrics(),
            )
        });

        let mut profile = Profiler::enabled();
        let mut metrics = MetricsRegistry::enabled();
        for (p, m) in &out {
            profile.merge(p);
            metrics.merge(m);
        }
        println!("=== {label} ===");
        println!("{}", profile.report());
        println!(
            "v-cycles: l0={} l1={} l2={}   scatter applies: {}",
            metrics.counter("mg", "vcycle", "l0"),
            metrics.counter("mg", "vcycle", "l1"),
            metrics.counter("mg", "vcycle", "l2"),
            metrics.counter("scatter", "apply", backend.label()),
        );
        let searched = metrics.counter("engine", "searched_segments", "single-context");
        println!("datatype search segments: {searched}\n");
    }
    println!("Ghost messages on this grid fit one pipeline block, so datatype");
    println!("search barely registers; the gap is the round-robin alltoallw's");
    println!("zero-byte synchronization, visible as fatter scatter_apply stages");
    println!("at every level of the baseline column.");
}
