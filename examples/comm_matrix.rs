//! Who talks to whom: the communication-topology map and the
//! algorithm-decision audit on the AMR-skew workload.
//!
//! The paper's second half is about *nonuniform communication volumes*;
//! this example makes them visible. An AMR-style moving refinement
//! hotspot (see `examples/amr_skew.rs`) runs its boundary exchanges under
//! the baseline flavor with the comm map and tracing enabled, plus one
//! nonuniform allgatherv whose volume set carries a 64 KB outlier. The
//! run then prints:
//!
//! * the cluster-wide src×dst byte matrix as a log₂-shaded ASCII heatmap,
//!   with nonuniformity analytics (outlier ratio, spread, Gini) and the
//!   hottest pairs;
//! * the algorithm-decision log — one audited record per auto-selected
//!   `allgatherv`/`alltoallw` call, with the evidence and stated reason;
//! * the misselections the measured traffic convicts: the baseline rings
//!   the outlier allgatherv (O(N) serial hops) and round-robins the
//!   sparse neighbour exchange (zero-byte synchronization with every
//!   peer), and the detector flags both with a cost-model what-if.
//!
//! Run with: `cargo run --release --example comm_matrix`

use nucomm::core::{
    analyze_comm_map, decisions_from_trace, detect_misselections, render_decision_log, Comm,
    MpiConfig, WPeer,
};
use nucomm::datatype::Datatype;
use nucomm::simnet::{
    comm_matrix_json, merge_comm_maps, render_heatmap, Cluster, ClusterConfig, CostModel,
    RankCommMap, TraceEvent,
};

const RANKS: usize = 16;
const STEPS: usize = 8;

/// Refinement level of `rank` when the hotspot is at `spot`: level 2 at
/// the hotspot, 1 beside it, 0 elsewhere.
fn level(rank: usize, spot: usize) -> u32 {
    let d = rank.abs_diff(spot).min(RANKS - rank.abs_diff(spot));
    match d {
        0 => 2,
        1 => 1,
        _ => 0,
    }
}

fn main() {
    let cfg = MpiConfig::baseline();
    let out: Vec<(Vec<TraceEvent>, RankCommMap)> =
        Cluster::new(ClusterConfig::paper_testbed(RANKS)).run(|rank| {
            rank.enable_tracing();
            rank.enable_comm_map();
            let mut comm = Comm::new(rank, cfg.clone());
            let me = comm.rank();
            let n = comm.size();

            // AMR boundary exchanges: sparse nearest-neighbour alltoallw,
            // refined boundaries carrying 4x the data per level.
            for step in 0..STEPS {
                let spot = (step * 3) % n;
                let succ = (me + 1) % n;
                let pred = (me + n - 1) % n;
                let cells = 16usize << (2 * level(me, spot));
                let dt = Datatype::contiguous(cells, &Datatype::double()).expect("boundary");
                let empty = Datatype::contiguous(0, &Datatype::double()).expect("empty");
                let mut sends: Vec<WPeer> =
                    (0..n).map(|_| WPeer::new(0, 0, empty.clone())).collect();
                let mut recvs = sends.clone();
                sends[succ] = WPeer::new(0, 1, dt.clone());
                sends[pred] = WPeer::new(0, 1, dt.clone());
                let sc = 16usize << (2 * level(succ, spot));
                let pc = 16usize << (2 * level(pred, spot));
                recvs[succ] = WPeer::new(
                    0,
                    1,
                    Datatype::contiguous(sc, &Datatype::double()).expect("succ"),
                );
                recvs[pred] = WPeer::new(
                    sc * 8,
                    1,
                    Datatype::contiguous(pc, &Datatype::double()).expect("pred"),
                );
                let sendbuf = vec![me as u8; cells * 8];
                let mut recvbuf = vec![0u8; (sc + pc) * 8];
                comm.alltoallw(&sendbuf, &sends, &mut recvbuf, &recvs);
            }

            // One nonuniform allgatherv: rank 0 contributes 64 KB, the
            // rest 8 bytes. The baseline's total-size rule picks the ring.
            let mut counts = vec![8usize; n];
            counts[0] = 64 * 1024;
            let send = vec![me as u8; counts[me]];
            let mut recv = vec![0u8; counts.iter().sum()];
            comm.allgatherv(&send, &counts, &mut recv);

            (
                comm.rank_mut().take_trace(),
                comm.rank_mut().take_comm_map(),
            )
        });

    println!(
        "AMR-skew workload under MpiFlavor::Baseline: {RANKS} ranks, {STEPS} boundary \
         exchanges + 1 outlier allgatherv\n"
    );

    // --- Who talks to whom -------------------------------------------------
    let maps: Vec<RankCommMap> = out.iter().map(|(_, m)| m.clone()).collect();
    let merged = merge_comm_maps(&maps);
    println!("{}", render_heatmap(&merged.total));
    let (total, epochs) = analyze_comm_map(&merged, 0.9, 4);
    let total = total.expect("traffic present");
    println!(
        "pairs={} max={} B min={} B outlier-ratio={:.1} gini={:.3}",
        total.pairs, total.max_bytes, total.min_bytes, total.outlier_ratio, total.gini
    );
    print!("hot pairs:");
    for (s, d, b) in &total.top {
        print!(" {s}->{d}:{b}B");
    }
    println!("  (the ring smears rank 0's 64 KB block across every link)\n");

    println!("per-epoch nonuniformity (one epoch per collective call):");
    for e in epochs.iter().take(3) {
        println!(
            "  {:<24} pairs={:>3} outlier-ratio={:>6.1} gini={:.3}",
            format!("{}#{}", e.label, e.occurrence),
            e.analysis.pairs,
            e.analysis.outlier_ratio,
            e.analysis.gini
        );
    }
    println!("  ... ({} epochs total)\n", epochs.len());

    // --- The decision audit ------------------------------------------------
    let decisions = decisions_from_trace(&out[0].0);
    println!("algorithm decisions (rank 0):");
    print!("{}", render_decision_log(&decisions));

    // --- Misselections -----------------------------------------------------
    let audit = detect_misselections(&decisions, Some(&merged), &CostModel::default(), &cfg);
    let flags = &audit.flags;
    println!(
        "\nmisselections (measured traffic vs chosen algorithm, \
         {} unjoined decisions / {} orphan epochs):",
        audit.unmatched_decisions, audit.unmatched_epochs
    );
    for f in flags {
        println!(
            "  {}#{}: chose {}, suggest {} — {} (est {:.0} us -> {:.0} us)",
            f.collective,
            f.occurrence,
            f.chosen,
            f.suggested,
            f.detail,
            f.est_chosen_ns / 1000.0,
            f.est_suggested_ns / 1000.0
        );
    }
    assert!(
        flags.iter().any(|f| f.chosen == "ring"),
        "the ringed outlier allgatherv must be flagged"
    );
    assert!(
        flags.iter().any(|f| f.chosen == "round_robin"),
        "the sparse round-robin alltoallw must be flagged"
    );

    // The raw matrix exports byte-stable JSON (golden-tested).
    let json = comm_matrix_json(&merged);
    let path = "target/figures/comm_matrix.json";
    std::fs::create_dir_all("target/figures").expect("mkdir");
    std::fs::write(path, &json).expect("write comm matrix");
    println!("\nwrote {path} ({} bytes)", json.len());
}
