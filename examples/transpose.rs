//! The matrix-transpose microbenchmark of §5.2, runnable as a demo: sends
//! a matrix column-major with a derived datatype while the receiver takes
//! it row-major, under both datatype engines, printing the comm/pack/
//! search breakdown (Figures 12–13 in miniature).
//!
//! Run with: `cargo run --release --example transpose [matrix-size]`

use nucomm::core::{Comm, MpiConfig};
use nucomm::datatype::{matrix_column_type, Datatype};
use nucomm::simnet::{Cluster, ClusterConfig, Tag};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);
    println!("transposing a {n}x{n} matrix of 3-double elements\n");
    println!(
        "{:>16} {:>12} {:>10} {:>10} {:>10}",
        "implementation", "latency", "comm+wait", "pack", "search"
    );
    for cfg in [MpiConfig::baseline(), MpiConfig::optimized()] {
        let label = cfg.flavor.label();
        let out = Cluster::new(ClusterConfig::uniform(2)).run(|rank| {
            let mut comm = Comm::new(rank, cfg.clone());
            let col = matrix_column_type(n, n, 3).expect("column type");
            let bytes = n * n * 24;
            if comm.rank() == 0 {
                let src: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
                comm.send(&src, &col, n, 1, Tag(0));
                None
            } else {
                let row = Datatype::contiguous(bytes, &Datatype::byte()).expect("row");
                let mut dst = vec![0u8; bytes];
                comm.recv(&mut dst, &row, 1, Some(0), Tag(0));
                Some(dst)
            }
        });

        // Verify the transposition actually happened (receiver's bytes are
        // the column-major pack of the sender's matrix).
        let dst = Cluster::new(ClusterConfig::uniform(1)).run(|_| {
            let col = matrix_column_type(n, n, 3).expect("column type");
            let bytes = n * n * 24;
            let src: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
            nucomm::datatype::pack_all(&col, n, &src).expect("pack")
        });
        assert_eq!(out[1].as_ref().expect("receiver data"), &dst[0]);

        // Timing run with stats.
        let stats = Cluster::new(ClusterConfig::uniform(2)).run(|rank| {
            let mut comm = Comm::new(rank, cfg.clone());
            let col = matrix_column_type(n, n, 3).expect("column type");
            let bytes = n * n * 24;
            if comm.rank() == 0 {
                comm.send(&vec![1u8; bytes], &col, n, 1, Tag(0));
            } else {
                let row = Datatype::contiguous(bytes, &Datatype::byte()).expect("row");
                let mut dst = vec![0u8; bytes];
                comm.recv(&mut dst, &row, 1, Some(0), Tag(0));
            }
            (comm.rank_ref().now(), comm.rank_ref().stats().clone())
        });
        let t = stats.iter().map(|(t, _)| *t).max().expect("two ranks");
        let mut agg = nucomm::simnet::Stats::new();
        for (_, s) in &stats {
            agg.merge(s);
        }
        println!(
            "{label:>16} {:>12} {:>10} {:>10} {:>10}",
            t.to_string(),
            (agg.comm + agg.wait).to_string(),
            agg.pack.to_string(),
            agg.search.to_string()
        );
    }
    println!("\nverified: received bytes are the exact column-major transposition.");
}
