//! Cross-run observatory walkthrough: ledger the Figure 14 workload
//! twice and let the differential engine explain what changed and why.
//!
//! The workload is the paper's skewed allgatherv — rank 0 contributes
//! 4096 doubles, everyone else one. The first (base) run pins the
//! baseline selector, which picks the ring algorithm from the *total*
//! volume and serializes the outlier message across O(N) hops; the
//! second (current) run lets the optimized outlier-aware selector
//! switch to recursive doubling. Both runs are fully traced and
//! persisted into the run ledger; `ncd_core::compare` then re-loads the
//! two entries and must attribute the improvement to the allgatherv
//! decision flip and the disappearance of the ring's sender-caused
//! waits.
//!
//! Run with: `cargo run --release --example compare_runs`

use ncd_bench::{report_to_ledger, time_phase_traced, Series};
use ncd_core::{compare, render_compare, Comm, MpiConfig, RegressionClass, RunRecord};
use ncd_simnet::{ledger_root, read_run, ClusterConfig};

const PROCS: usize = 16;
const OUTLIER_DOUBLES: usize = 4096;

/// The Figure 14 workload: one allgatherv with a single outlier volume.
fn skewed_allgatherv(comm: &mut Comm) {
    let mut counts = vec![8usize; comm.size()];
    counts[0] = OUTLIER_DOUBLES * 8;
    let me = comm.rank();
    let send = vec![me as u8; counts[me]];
    let mut recv = vec![0u8; counts.iter().sum()];
    comm.allgatherv(&send, &counts, &mut recv);
}

/// Run the workload fully traced under `cfg` and persist it into the
/// ledger as one run of the `compare_runs` bench; returns the loaded
/// [`RunRecord`] the differential engine consumes.
fn ledger_once(flavor: &str, cfg: MpiConfig) -> RunRecord {
    let (t, _, metrics, map, history, traces) =
        time_phase_traced(ClusterConfig::uniform(PROCS), cfg, 5, |comm, _| {
            skewed_allgatherv(comm)
        });
    let mut latency = Series::new("latency-usec");
    latency.push(format!("{PROCS}procs/{OUTLIER_DOUBLES}doubles"), t.as_us());
    let knobs = vec![
        ("procs".to_string(), PROCS.to_string()),
        ("outlier_doubles".to_string(), OUTLIER_DOUBLES.to_string()),
        ("flavor".to_string(), flavor.to_string()),
    ];
    let manifest = report_to_ledger(
        "compare_runs",
        true,
        &knobs,
        &[latency],
        Some(&metrics),
        Some(&map),
        Some(&history),
        Some(&traces),
        None,
    )
    .expect("write the run ledger");
    let dir = ledger_root().join("compare_runs").join(&manifest.run_id);
    let run = read_run(&dir).expect("re-read the ledgered run");
    RunRecord::from_ledger(&run).expect("parse the ledgered artifacts")
}

fn main() {
    // Keep the walkthrough self-contained: its ledger lives under
    // target/ next to the other example outputs.
    std::env::set_var("NCD_OBSERVATORY", "target/observatory-example");

    println!("base run: allgatherv selector pinned to the baseline (ring) ...");
    let base = ledger_once("ring", MpiConfig::baseline());
    println!("current run: optimized outlier-aware selector ...");
    let cur = ledger_once("auto", MpiConfig::optimized());

    let diff = compare(&base, &cur);
    print!("\n{}", render_compare(&diff, 10));

    // The differential must explain the improvement, not just report it:
    // (1) the allgatherv auto-selection flipped away from the ring ...
    let flip = diff
        .flips
        .iter()
        .find(|f| f.collective == "allgatherv")
        .expect("the allgatherv decision flip must be detected");
    assert_eq!(flip.base_chosen, "ring", "base run pinned the ring");
    assert_ne!(flip.cur_chosen, "ring", "current run left the ring");
    assert!(
        diff.causes
            .iter()
            .any(|c| c.class == RegressionClass::Decision),
        "the ranked causes must lead with the decision flip: {:?}",
        diff.causes
    );

    // ... and (2) the ring's serialized waits disappeared: total wait
    // time attributed to the allgatherv (the trace labels rounds with
    // the algorithm, e.g. `allgatherv/ring`) dropped for the waiting
    // ranks.
    let path = diff.path.as_ref().expect("both runs carry traces");
    let wait_delta: i64 = path
        .attribution_deltas
        .iter()
        .filter(|a| a.op.starts_with("allgatherv"))
        .map(|a| a.wait_delta_ns())
        .sum();
    assert!(
        wait_delta < 0,
        "leaving the ring must reduce allgatherv wait time, got {wait_delta} ns"
    );
    println!(
        "\nexplained: allgatherv {} -> {} (occurrence {}), {} us of allgatherv wait removed",
        flip.base_chosen,
        flip.cur_chosen,
        flip.occurrence,
        -wait_delta / 1_000
    );
}
