//! Watching traffic drift: the epoch time series, the online drift
//! monitor, and the pattern-recurrence join on a remeshing workload.
//!
//! The comm-map example (`examples/comm_matrix.rs`) shows *where* the
//! bytes go; this one shows *when that changes*. A 16-rank cluster runs
//! an AMR-style boundary exchange whose mesh is remeshed twice mid-run —
//! the refinement hotspot appears at rank 5, then jumps to rank 10 and
//! deepens — while the per-communicator epoch history records one point
//! per collective call (volume, skew, algorithm, and an order-invariant
//! pattern hash of the receive-length vector). The run then prints:
//!
//! * the sparkline dashboard of every epoch series (bytes and Gini over
//!   time, last volume, distinct patterns);
//! * the regime shifts the online EWMA/CUSUM monitor fired — mirrored
//!   into the trace, the metrics registry, and the flight recorder's
//!   dedicated drift ring as they happened;
//! * the pattern-recurrence table: each regime's hash recurs while the
//!   mesh stays put, so three regimes leave exactly three distinct
//!   patterns on the series.
//!
//! Run with: `cargo run --release --example drift_watch`

use nucomm::core::{
    drift_events_from_trace, pattern_recurrence, render_drift_events, render_recurrence,
    AllgathervAlgorithm, Comm, DriftConfig, MpiConfig,
};
use nucomm::simnet::{
    history_json, history_report, last_run_dump, merge_histories, Cluster, ClusterConfig,
};

const RANKS: usize = 16;
/// Epochs per stationary regime; the remeshes land at epoch boundaries
/// EPOCHS and 2*EPOCHS.
const EPOCHS: usize = 8;

/// Refinement level of `rank` under a hotspot at `spot`.
fn level(rank: usize, spot: usize, depth: u32) -> u32 {
    let d = rank.abs_diff(spot).min(RANKS - rank.abs_diff(spot));
    depth.saturating_sub(d as u32)
}

/// Per-rank boundary payload (bytes) for one regime of the run.
fn counts(spot: Option<usize>, depth: u32) -> Vec<usize> {
    (0..RANKS)
        .map(|r| {
            let lvl = spot.map_or(0, |s| level(r, s, depth));
            (16usize << (2 * lvl)) * 8
        })
        .collect()
}

fn main() {
    // (spot, depth) per regime: uniform, refine at 5, remesh to 10 deeper.
    let regimes = [(None, 0u32), (Some(5), 2), (Some(10), 3)];
    let out = Cluster::new(ClusterConfig::paper_testbed(RANKS)).run(move |rank| {
        rank.enable_tracing();
        rank.enable_history(); // also enables the comm map it derives from
        let mut comm = Comm::new(rank, MpiConfig::optimized());
        let me = comm.rank();
        for (spot, depth) in regimes {
            let counts = counts(spot, depth);
            let total: usize = counts.iter().sum();
            for _ in 0..EPOCHS {
                let send = vec![me as u8; counts[me]];
                let mut recv = vec![0u8; total];
                // Pinned ring: the subject is the traffic shifting under a
                // fixed algorithm, not the selector.
                comm.allgatherv_with(AllgathervAlgorithm::Ring, &send, &counts, &mut recv);
            }
        }
        let trace = comm.rank_mut().take_trace();
        let history = comm.rank_mut().take_history();
        (trace, history)
    });

    // --- The epoch time series -------------------------------------------
    let histories: Vec<_> = out.iter().map(|(_, h)| h.clone()).collect();
    let merged = merge_histories(&histories);
    print!("{}", history_report(&merged));

    // --- Drift events the online monitor fired ----------------------------
    let drift = drift_events_from_trace(&out[0].0);
    print!("\n{}", render_drift_events(&drift));
    let bound = DriftConfig::default().warmup + 1;
    for boundary in [EPOCHS as u32, 2 * EPOCHS as u32] {
        assert!(
            drift
                .iter()
                .any(|e| e.occurrence >= boundary && e.occurrence < boundary + bound),
            "remesh at epoch {boundary} must be flagged within {bound} epochs"
        );
    }

    // The same events survive in the flight recorder's drift ring, immune
    // to main-ring eviction — this is what a post-mortem dump shows.
    let dump = last_run_dump().expect("a run just happened");
    let drift_lines: Vec<&str> = dump
        .lines()
        .filter(|l| l.contains("drift      "))
        .take(8)
        .collect();
    println!("\nflight recorder drift ring (first ranks):");
    for l in &drift_lines {
        println!("  {l}");
    }
    assert!(!drift_lines.is_empty(), "drift ring must hold the shifts");

    // --- Pattern recurrence ------------------------------------------------
    let rec = pattern_recurrence(&merged);
    print!("\n{}", render_recurrence(&rec));
    assert_eq!(rec[0].distinct, 3, "one pattern hash per regime");

    // The byte-stable export (golden-tested in the simnet crate).
    let json = history_json(&merged);
    let path = "target/analysis/drift_watch.history.json";
    std::fs::create_dir_all("target/analysis").expect("mkdir");
    std::fs::write(path, &json).expect("write history");
    println!("\nwrote {path} ({} bytes)", json.len());
}
