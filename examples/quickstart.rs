//! Quickstart: send a noncontiguous matrix column between two simulated
//! ranks, with both datatype engines, and look at where the time goes.
//!
//! Run with: `cargo run --release --example quickstart`

use nucomm::core::{Comm, MpiConfig};
use nucomm::datatype::{matrix_column_type, Datatype};
use nucomm::simnet::{Cluster, ClusterConfig, Tag};

fn main() {
    // An 8x8 matrix whose elements are 3 doubles (the paper's Figure 4).
    // The first column is 8 noncontiguous pieces of 24 bytes.
    let col = matrix_column_type(8, 8, 3).expect("column datatype");
    println!(
        "column datatype: {} bytes in {} segments (avg {} B/segment)",
        col.size(),
        col.num_segments(),
        col.avg_segment_len()
    );

    for cfg in [MpiConfig::baseline(), MpiConfig::optimized()] {
        let label = cfg.flavor.label();
        let out = Cluster::new(ClusterConfig::uniform(2)).run(|rank| {
            let mut comm = Comm::new(rank, cfg.clone());
            let col = matrix_column_type(256, 256, 3).expect("column datatype");
            let n = 256 * 256 * 24;
            if comm.rank() == 0 {
                // Send all 256 columns — the whole matrix, transposed.
                let src = vec![7u8; n];
                comm.send(&src, &col, 256, 1, Tag(0));
            } else {
                let row = Datatype::contiguous(n, &Datatype::byte()).expect("row type");
                let mut dst = vec![0u8; n];
                comm.recv(&mut dst, &row, 1, Some(0), Tag(0));
            }
            (
                comm.rank_ref().now(),
                comm.rank_ref().stats().search,
                comm.rank_ref().stats().pack,
            )
        });
        let (t, search, pack) = &out[0];
        println!("{label:>16}: sender done at {t}, search time {search}, pack time {pack}");
    }
    println!("\nThe baseline loses its datatype context to look-ahead and re-searches");
    println!("from the start on every pipeline block; the dual-context engine never");
    println!("searches. See benches/fig12_transpose.rs for the full sweep.");
}
