//! The Bratu problem `-∇²u = λ eᵘ` on the unit square — PETSc's classic
//! nonlinear example (SNES ex5) — solved with the full stack: Newton–Krylov
//! (JFNK) over matrix-free GMRES, with every residual and Jacobian-vector
//! product doing a ghost exchange through the scatter machinery.
//!
//! Run with: `cargo run --release --example bratu [lambda]`

use nucomm::core::{Comm, MpiConfig};
use nucomm::petsc::{
    newton_krylov, Bratu2d, DistributedArray, ScatterBackend, SnesSettings, StencilKind,
};
use nucomm::simnet::{Cluster, ClusterConfig};

const N: usize = 32;
const RANKS: usize = 4;

fn main() {
    let lambda: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5.0);
    println!("Bratu problem on a {N}x{N} grid, lambda = {lambda}, {RANKS} ranks\n");

    for (label, cfg, backend) in [
        (
            "MVAPICH2-0.9.5",
            MpiConfig::baseline(),
            ScatterBackend::Datatype,
        ),
        (
            "MVAPICH2-New",
            MpiConfig::optimized(),
            ScatterBackend::Datatype,
        ),
        (
            "hand-tuned",
            MpiConfig::optimized(),
            ScatterBackend::HandTuned,
        ),
    ] {
        let out = Cluster::new(ClusterConfig::paper_testbed(RANKS)).run(|rank| {
            let mut comm = Comm::new(rank, cfg.clone());
            let h = 1.0 / (N as f64 + 1.0);
            let da = DistributedArray::new(&mut comm, &[N, N], 1, StencilKind::Star, 1);
            let bratu = Bratu2d::new(&da, h, lambda);
            let mut u = da.create_global_vec();
            comm.barrier();
            comm.rank_mut().reset_clock();
            let mut settings = SnesSettings::default();
            settings.ksp.backend = backend;
            let res = newton_krylov(&mut comm, &bratu, &mut u, &settings);
            assert!(res.converged, "Newton failed: {res:?}");
            (
                res.iterations,
                res.function_evals,
                u.norm_inf(&mut comm),
                comm.rank_ref().now(),
            )
        });
        let (newton_its, fevals, umax, _) = out[0];
        let t = out.iter().map(|o| o.3).max().expect("nonempty");
        println!(
            "{label:>16}: {newton_its} Newton iterations, {fevals} F-evaluations, max(u) = {umax:.6}, time {t}"
        );
    }
    println!("\nAll three implementations compute the identical solution; the");
    println!("timing gap is entirely in how the MPI layer handles the ghost");
    println!("exchanges of the JFNK residual evaluations.");
}
