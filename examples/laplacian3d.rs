//! The paper's application (§5.5) in miniature: a 3-D Laplacian solved by
//! a three-level geometric multigrid through the PETSc layer, comparing
//! the three implementations of Figure 17 on a smaller grid.
//!
//! Run with: `cargo run --release --example laplacian3d`

use nucomm::core::{Comm, MpiConfig};
use nucomm::petsc::{richardson, KspSettings, LaplacianOp, Multigrid, PVec, ScatterBackend};
use nucomm::simnet::{Cluster, ClusterConfig, SimTime};

const GRID: usize = 40;
const RANKS: usize = 16;

fn solve(cfg: MpiConfig, backend: ScatterBackend) -> (SimTime, usize, f64) {
    let out = Cluster::new(ClusterConfig::paper_testbed(RANKS)).run(|rank| {
        let mut comm = Comm::new(rank, cfg.clone());
        let h = 1.0 / GRID as f64;
        let mg = Multigrid::new(&mut comm, &[GRID, GRID, GRID], h, 3, backend);
        let da = mg.fine_da();
        let op = LaplacianOp::new(da, h);

        // -∇²u = x + y + z on the unit cube, u = 0 on the boundary.
        let mut b = PVec::zeros(da.global_layout().clone(), comm.rank());
        for (off, p) in da.owned_points().enumerate() {
            b.local_mut()[off] = (p[0] as f64 + p[1] as f64 + p[2] as f64 + 1.5) * h;
        }
        let mut x = PVec::zeros(da.global_layout().clone(), comm.rank());
        comm.barrier();
        comm.rank_mut().reset_clock();
        let res = richardson(
            &mut comm,
            &op,
            &mg,
            1.0,
            &b,
            &mut x,
            &KspSettings {
                rtol: 1e-8,
                max_it: 40,
                backend,
                ..Default::default()
            },
        );
        assert!(res.converged, "solver did not converge: {res:?}");
        (comm.rank_ref().now(), res.iterations, x.norm2(&mut comm))
    });
    let t = out.iter().map(|o| o.0).max().expect("nonempty");
    (t, out[0].1, out[0].2)
}

fn main() {
    println!("-∇²u = f on a {GRID}³ grid, 3-level multigrid, {RANKS} simulated ranks\n");
    let configs = [
        (
            "hand-tuned",
            MpiConfig::optimized(),
            ScatterBackend::HandTuned,
        ),
        (
            "MVAPICH2-0.9.5",
            MpiConfig::baseline(),
            ScatterBackend::Datatype,
        ),
        (
            "MVAPICH2-New",
            MpiConfig::optimized(),
            ScatterBackend::Datatype,
        ),
    ];
    let mut results = Vec::new();
    for (label, cfg, backend) in configs {
        let (t, iters, norm) = solve(cfg, backend);
        println!("{label:>16}: {t} ({iters} MG iterations, |u| = {norm:.6})");
        results.push((label, t, norm));
    }
    // All three run identical numerics.
    assert!(results.windows(2).all(|w| (w[0].2 - w[1].2).abs() < 1e-12));
    let base = results[1].1;
    let new = results[2].1;
    println!(
        "\noptimized framework improves the solve by {:.1}% over the baseline",
        100.0 * (base.as_ns() as f64 - new.as_ns() as f64) / base.as_ns() as f64
    );
    println!("(run `cargo bench --bench fig17_multigrid` for the full 100³ scaling study)");
}
