//! Render the communication timeline of an `MPI_Alltoallw`
//! nearest-neighbour exchange under both schedules — making the paper's
//! §4.2.2 argument *visible*: the round-robin schedule's zero-byte
//! exchanges serialize every rank against every other, while the binned
//! schedule finishes after touching only real neighbours.
//!
//! Besides the ASCII art, a 4-rank run of the same pattern is exported as
//! Chrome trace-event JSON (load `target/figures/alltoallw_trace.json`
//! into chrome://tracing or https://ui.perfetto.dev): one lane per rank
//! with send/recv spans and the per-round instants of both schedules.
//!
//! Run with: `cargo run --release --example timeline`

use nucomm::core::{Comm, MpiConfig, WPeer};
use nucomm::datatype::Datatype;
use nucomm::simnet::{render_timeline_fit, write_chrome_trace, Cluster, ClusterConfig, TraceEvent};

const RANKS: usize = 8;

fn run(cfg: MpiConfig, ranks: usize) -> Vec<Vec<TraceEvent>> {
    Cluster::new(ClusterConfig::paper_testbed(ranks)).run(|rank| {
        let mut comm = Comm::new(rank, cfg.clone());
        comm.barrier();
        comm.rank_mut().reset_clock();
        comm.rank_mut().enable_tracing();

        let me = comm.rank();
        let n = comm.size();
        let succ = (me + 1) % n;
        let pred = (me + n - 1) % n;
        let m = Datatype::contiguous(100, &Datatype::double()).expect("matrix");
        let empty = Datatype::contiguous(0, &Datatype::double()).expect("empty");
        let mut sends: Vec<WPeer> = (0..n).map(|_| WPeer::new(0, 0, empty.clone())).collect();
        let mut recvs = sends.clone();
        sends[succ] = WPeer::new(0, 1, m.clone());
        recvs[pred] = WPeer::new(0, 1, m.clone());
        sends[pred] = WPeer::new(800, 1, m.clone());
        recvs[succ] = WPeer::new(800, 1, m.clone());
        let sendbuf = vec![me as u8; 1600];
        let mut recvbuf = vec![0u8; 1600];
        comm.alltoallw(&sendbuf, &sends, &mut recvbuf, &recvs);
        comm.rank_mut().take_trace()
    })
}

fn main() {
    println!(
        "alltoallw neighbour exchange on {RANKS} ranks (s = sending, r = receiving/waiting)\n"
    );
    for cfg in [MpiConfig::baseline(), MpiConfig::optimized()] {
        let label = cfg.flavor.label();
        let traces = run(cfg, RANKS);
        let total_events: usize = traces.iter().map(Vec::len).sum();
        println!("--- {label} ({total_events} message events) ---");
        println!("{}", render_timeline_fit(&traces, 76)); // 76-col terminal budget
    }
    println!("The baseline's rows are full of synchronization (zero-byte");
    println!("round-robin steps with all {RANKS} peers); the optimized rows touch");
    println!("only the two real neighbours and finish an order of magnitude earlier.");

    // Chrome trace export: a 4-rank baseline run, small enough to read
    // event by event in the viewer.
    let traces = run(MpiConfig::baseline(), 4);
    let path = "target/figures/alltoallw_trace.json";
    match write_chrome_trace(path, &traces) {
        Ok(()) => println!("\nChrome trace (4-rank alltoallw): {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
