//! Profile the datatype pack pipeline block by block — the paper's
//! Figure 9 contrast, reproduced on a vector-of-structs datatype.
//!
//! A "particle" struct holds a 3-double position plus one tag double at a
//! displaced offset, leaving a hole in the extent: every look-ahead window
//! classifies *sparse*, so each pipeline block takes the packed path. The
//! baseline single-context engine loses its cursor to the look-ahead and
//! re-searches the datatype from the start for every block — the observer
//! shows its seek distance growing with the block index (quadratic total).
//! The dual-context engine keeps a dedicated pack cursor and never seeks.
//!
//! The per-block numbers come from the [`PackObserver`] hook threaded
//! through the engines; the same hook feeds the `datatype/*` metrics, the
//! flight recorder, and the Chrome-trace `pack seek` counter track when a
//! send runs inside the simulated cluster (second half of this example).
//!
//! Run with: `cargo run --release --example pack_profile`

use nucomm::core::{Comm, MpiConfig};
use nucomm::datatype::{
    pack_all_profiled, BlockLog, Datatype, EngineKind, EngineParams, StructField,
};
use nucomm::simnet::{render_timeline_fit, write_chrome_trace, Cluster, ClusterConfig, Tag};

/// One particle: 24 bytes of position, an 8-byte hole, then a tag double.
fn particle() -> Datatype {
    Datatype::structure(&[
        StructField {
            disp: 0,
            count: 3,
            dtype: Datatype::double(),
        },
        StructField {
            disp: 32,
            count: 1,
            dtype: Datatype::double(),
        },
    ])
    .expect("particle struct")
}

fn params() -> EngineParams {
    EngineParams {
        block_size: 4096,
        ..EngineParams::default()
    }
}

fn profile(kind: EngineKind, count: usize) -> BlockLog {
    let dt = particle();
    let src = vec![7u8; dt.extent() as usize * count];
    let mut log = BlockLog::default();
    pack_all_profiled(kind, &dt, count, params(), &src, &mut log).expect("pack");
    log
}

fn main() {
    let sizes = [512usize, 1024, 2048, 4096, 8192];

    println!("=== pack pipeline profile: vector of particle structs (block size 4096) ===");
    println!(
        "{:>10} | {:>7} {:>10} {:>9} | {:>7} {:>10} {:>9}",
        "", "single", "-context", "", "dual", "-context", ""
    );
    println!(
        "{:>10} | {:>7} {:>10} {:>9} | {:>7} {:>10} {:>9}",
        "particles", "blocks", "seek segs", "seek/blk", "blocks", "seek segs", "seek/blk"
    );
    let mut prev_seek = 0u64;
    for &n in &sizes {
        let single = profile(EngineKind::SingleContext, n);
        let dual = profile(EngineKind::DualContext, n);
        assert_eq!(single.total_bytes(), dual.total_bytes());
        println!(
            "{:>10} | {:>7} {:>10} {:>9.1} | {:>7} {:>10} {:>9.1}",
            n,
            single.blocks.len(),
            single.total_seek(),
            single.seek_per_block(),
            dual.blocks.len(),
            dual.total_seek(),
            dual.seek_per_block(),
        );
        if prev_seek > 0 {
            let ratio = single.total_seek() as f64 / prev_seek as f64;
            println!(
                "{:>10} | seek grew {ratio:.1}x for 2x the data (quadratic re-search)",
                ""
            );
        }
        prev_seek = single.total_seek();
    }

    // Per-block view at one size: the baseline's seek target is the block's
    // starting segment, so it climbs block after block; dual stays at zero.
    let n = 2048;
    let single = profile(EngineKind::SingleContext, n);
    println!("\nper-block seek distance, single-context, {n} particles:");
    for obs in single.blocks.iter().step_by(4) {
        println!(
            "  block {:>3}: seek {:>6} segments, look-ahead {:>3}, {:>5} bytes {}",
            obs.index,
            obs.seek_segments,
            obs.lookahead_segments,
            obs.bytes,
            if obs.seek_segments > 0 {
                "<- re-search"
            } else {
                ""
            }
        );
    }

    // The same contrast inside the simulated cluster: a typed send drives
    // the engine block by block, so the trace grows a `dt` lane and the
    // Chrome export a `pack seek` counter track per rank.
    for (label, cfg) in [
        ("single-cursor (baseline)", MpiConfig::baseline()),
        ("dual-context (optimized)", MpiConfig::optimized()),
    ] {
        let mut cfg = cfg;
        cfg.engine.block_size = 4096;
        let traces = Cluster::new(ClusterConfig::uniform(2)).run(move |rank| {
            rank.enable_tracing();
            let mut comm = Comm::new(rank, cfg.clone());
            let dt = particle();
            let n = 2048;
            if comm.rank() == 0 {
                let src = vec![7u8; dt.extent() as usize * n];
                comm.send(&src, &dt, n, 1, Tag(0));
            } else {
                let total = dt.size() * n;
                let mut dst = vec![0u8; total];
                let row = Datatype::contiguous(total, &Datatype::byte()).expect("row");
                comm.recv(&mut dst, &row, 1, Some(0), Tag(0));
            }
            comm.rank_mut().take_trace()
        });
        println!("\n{label}: pack blocks on the dt lane (p = sparse/packed):");
        print!("{}", render_timeline_fit(&traces, 100));
        let json = format!("target/figures/pack_profile_{}.json", {
            if label.starts_with("single") {
                "single"
            } else {
                "dual"
            }
        });
        if write_chrome_trace(std::path::Path::new(&json), &traces).is_ok() {
            println!("chrome trace: {json} (see the 'pack seek (rank 0)' counter track)");
        }
    }
}
