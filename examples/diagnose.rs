//! Diagnosing a run: wait-state classification, the blame matrix, and
//! remediation hints joined against the decision audit.
//!
//! The critical-path example (`examples/critical_path.rs`) shows *where*
//! the makespan went; this one shows *why ranks waited and who to blame*.
//! A 16-rank cluster runs a skewed allgatherv under the **baseline**
//! selector: rank 0 holds a 4096x outlier block *and* computes longest,
//! and the baseline's total-size rule picks the ring over it. The run
//! then prints:
//!
//! * the diagnosis report — every blocked receive classified into a
//!   typed wait pattern (late-sender, serialization-chain,
//!   pack-bound-sender, wait-at-collective, late-receiver) with severity
//!   equal to the simulated time it cost, the ranked finding table, and
//!   the rank×rank blame heatmap;
//! * the remediation hints — the top finding cross-referenced against
//!   the algorithm-decision audit ("consistent with flagged
//!   misselection; see decision #k") and the blame-concentration verdict
//!   naming the outlier rank;
//! * the flight-recorder dump with the top findings mirrored into each
//!   blamed rank's diagnosis ring.
//!
//! The byte-stable classification JSON lands in
//! `target/analysis/diagnose.diagnosis.json`.
//!
//! Run with: `cargo run --release --example diagnose`

use nucomm::core::{
    decisions_from_trace, detect_misselections, remediation_hints, render_hints, Comm, MpiConfig,
};
use nucomm::simnet::{
    diagnose, diagnosis_json, last_run_dump, merge_comm_maps, mirror_to_flight_recorder,
    write_diagnosis_json, Cluster, ClusterConfig, WaitPattern,
};

const RANKS: usize = 16;
const STEPS: usize = 3;
const OUTLIER: usize = 0;

fn main() {
    let cluster = ClusterConfig::paper_testbed(RANKS);
    let cost = cluster.cost.clone();
    let cfg = MpiConfig::baseline();
    let mpi = cfg.clone();
    let out = Cluster::new(cluster).run(move |rank| {
        rank.enable_tracing();
        rank.enable_comm_map();
        let mut comm = Comm::new(rank, mpi.clone());
        let me = comm.rank();
        let n = comm.size();
        let mut counts = vec![8usize; n];
        counts[OUTLIER] = 4096 * 8;
        let total: usize = counts.iter().sum();
        for _ in 0..STEPS {
            if me == OUTLIER {
                // The outlier computes longest, entering the ring late.
                comm.rank_mut().compute_flops(10_000_000);
            }
            let send = vec![me as u8; counts[me]];
            let mut recv = vec![0u8; total];
            comm.allgatherv(&send, &counts, &mut recv);
        }
        let map = comm.rank_mut().take_comm_map();
        let trace = comm.rank_mut().take_trace();
        (trace, map)
    });
    let (traces, maps): (Vec<_>, Vec<_>) = out.into_iter().unzip();

    // Classify every blocked receive and rank the findings.
    let diag = diagnose(&traces);
    println!("{}", diag.render(8));

    // Join against the decision audit for remediation hints.
    let decisions = decisions_from_trace(&traces[OUTLIER]);
    let map = merge_comm_maps(&maps);
    let audit = detect_misselections(&decisions, Some(&map), &cost, &cfg);
    let hints = remediation_hints(&diag, &decisions, &audit, &[]);
    print!("{}", render_hints(&hints));

    // Mirror the top findings into the blamed ranks' flight recorders,
    // then show the dump an anomaly would produce.
    let mirrored = mirror_to_flight_recorder(&diag, 3);
    println!("\n{mirrored} finding(s) mirrored into the flight recorder;");
    if let Some(dump) = last_run_dump() {
        for line in dump.lines().filter(|l| l.contains("diag ")) {
            println!("{line}");
        }
    }

    // The byte-stable artifact, as the benches write it.
    let dir = std::path::Path::new("target").join("analysis");
    std::fs::create_dir_all(&dir).expect("create analysis dir");
    let path = dir.join("diagnose.diagnosis.json");
    write_diagnosis_json(&path, &diag).expect("write diagnosis artifact");
    println!(
        "\ndiagnosis json: {} ({} bytes)",
        path.display(),
        diagnosis_json(&diag).len()
    );

    // The shape this example promises: the outlier rank owns the
    // majority of the allgatherv wait through sender-caused patterns,
    // and the audit cross-reference fires.
    let share = diag.sender_caused_severity("allgatherv", OUTLIER).as_ns() as f64
        / diag.op_severity("allgatherv").as_ns().max(1) as f64;
    assert!(
        share > 0.5,
        "outlier must own the majority of the wait, got {:.1}%",
        100.0 * share
    );
    assert!(
        diag.pattern_severity(WaitPattern::SerializationChain)
            .as_ns()
            > 0,
        "the ring must forward the outlier delay as a chain"
    );
    assert!(
        hints.iter().any(|h| h.contains("misselection")),
        "the ring-over-outlier misselection must be cross-referenced: {hints:?}"
    );
    println!(
        "ok: rank {OUTLIER} owns {:.1}% of the allgatherv wait",
        100.0 * share
    );
}
