//! Observatory ledger listing: enumerate every run persisted under the
//! ledger root, one row per run — bench, content-hash run id, mode, the
//! bench's declared knobs, how many artifacts the run carries, and the
//! critical-path makespan when the run was traced. The run the bench's
//! `latest` pointer names is marked with `*`.
//!
//! The walkthrough is self-contained: it shares its ledger with the
//! `compare_runs` example (`target/observatory-example`) and seeds two
//! runs of the Figure 14 skewed-allgatherv workload (baseline ring vs
//! optimized selector) if the ledger is empty, so the listing always
//! has something to show.
//!
//! Run with: `cargo run --release --example observatory_ls`

use ncd_bench::{report_to_ledger, time_phase_traced, Series};
use ncd_core::{MpiConfig, RunRecord};
use ncd_simnet::{latest_run_id, ledger_root, read_run, ClusterConfig};

const PROCS: usize = 16;

/// One listing row, parsed back out of a persisted run directory.
struct Row {
    bench: String,
    run_id: String,
    latest: bool,
    mode: String,
    knobs: String,
    artifacts: usize,
    makespan_ms: Option<f64>,
}

/// Ledger one run of the Figure 14 workload under `cfg`.
fn seed_run(flavor: &str, cfg: MpiConfig) {
    let (t, _, metrics, map, history, traces) =
        time_phase_traced(ClusterConfig::uniform(PROCS), cfg, 3, |comm, _| {
            let mut counts = vec![8usize; comm.size()];
            counts[0] = 4096 * 8;
            let me = comm.rank();
            let send = vec![me as u8; counts[me]];
            let mut recv = vec![0u8; counts.iter().sum()];
            comm.allgatherv(&send, &counts, &mut recv);
        });
    let mut latency = Series::new("latency-usec");
    latency.push(format!("{PROCS}procs"), t.as_us());
    report_to_ledger(
        "observatory_ls",
        true,
        &[("flavor".to_string(), flavor.to_string())],
        &[latency],
        Some(&metrics),
        Some(&map),
        Some(&history),
        Some(&traces),
        None,
    )
    .expect("write the run ledger");
}

/// Walk `<root>/<bench>/<run-id>/` and parse every run found.
fn collect_rows() -> Vec<Row> {
    let root = ledger_root();
    let mut rows = Vec::new();
    let Ok(benches) = std::fs::read_dir(&root) else {
        return rows;
    };
    for bench_entry in benches.flatten() {
        if !bench_entry.path().is_dir() {
            continue;
        }
        let bench = bench_entry.file_name().to_string_lossy().to_string();
        let latest = latest_run_id(&root, &bench);
        let Ok(runs) = std::fs::read_dir(bench_entry.path()) else {
            continue;
        };
        for run_entry in runs.flatten() {
            if !run_entry.path().is_dir() {
                continue; // the `latest` pointer file
            }
            let run = match read_run(&run_entry.path()) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!("skipping {}: {e}", run_entry.path().display());
                    continue;
                }
            };
            let artifacts = run.artifacts.len();
            let rec = match RunRecord::from_ledger(&run) {
                Ok(rec) => rec,
                Err(e) => {
                    eprintln!("skipping {}: {e}", run_entry.path().display());
                    continue;
                }
            };
            rows.push(Row {
                latest: latest.as_deref() == Some(rec.run_id.as_str()),
                bench: bench.clone(),
                mode: rec.mode,
                knobs: rec
                    .knobs
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(","),
                artifacts,
                makespan_ms: rec.path.map(|p| p.makespan_ns as f64 / 1e6),
                run_id: rec.run_id,
            });
        }
    }
    rows.sort_by(|a, b| (&a.bench, &a.run_id).cmp(&(&b.bench, &b.run_id)));
    rows
}

fn main() {
    // Share the self-contained example ledger with `compare_runs`.
    if std::env::var("NCD_OBSERVATORY").is_err() {
        std::env::set_var("NCD_OBSERVATORY", "target/observatory-example");
    }

    if collect_rows().is_empty() {
        println!("ledger empty; seeding two runs of the skewed-allgatherv workload ...");
        seed_run("ring", MpiConfig::baseline());
        seed_run("auto", MpiConfig::optimized());
    }

    let rows = collect_rows();
    println!(
        "\n=== observatory ledger ({} run(s) under {}) ===",
        rows.len(),
        ledger_root().display()
    );
    println!(
        "{:<24}{:<19}{:<7}{:>10}{:>14}  knobs",
        "bench", "run-id", "mode", "artifacts", "makespan-ms"
    );
    for r in &rows {
        let makespan = r
            .makespan_ms
            .map(|ms| format!("{ms:.3}"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<24}{:<19}{:<7}{:>10}{:>14}  {}",
            r.bench,
            format!("{}{}", r.run_id, if r.latest { "*" } else { "" }),
            r.mode,
            r.artifacts,
            makespan,
            r.knobs
        );
    }
    println!("(* = the run the bench's `latest` pointer names)");

    assert!(
        rows.len() >= 2,
        "the seeded ledger must list at least two runs"
    );
    assert!(
        rows.iter().any(|r| r.latest),
        "every bench directory must resolve a latest pointer"
    );
    assert!(
        rows.iter().all(|r| r.run_id.len() == 16),
        "run ids are 16 hex digits"
    );
}
